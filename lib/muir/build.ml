(** Construction of the baseline μIR circuit from compiler IR —
    the front half of the toolchain (Algorithm 1 in the paper).

    Stage 1 walks the program and creates one task block per function
    and per loop (loops and calls are the dynamically-scheduled region
    boundaries).  Stage 2 lowers each task's basic blocks to a
    predicated hyperblock dataflow:

    - block predicates become boolean dataflow;
    - phis at if-joins become [Merge] nodes selected by edge
      predicates;
    - loop-header phis become the classic dataflow loop schema
      ([MergeLoop] "μ" nodes primed by an initial control token, with
      [Steer] switches routing carried values either around the back
      edge or out to the live-outs — Arvind-and-Nikhil style);
    - inner loops and calls collapse to [CallChild] request/response
      super-nodes; Cilk spawns become [SpawnChild]+[SyncWait];
    - memory ops get conservative same-space ordering chains so that
      pipelined iterations never violate program memory order. *)

module G = Graph
module F = Muir_ir.Func
module I = Muir_ir.Instr
module T = Muir_ir.Types
module P = Muir_ir.Program

type port = G.node_id * int

type st = {
  prog : P.t;
  mutable tasks : G.task list;
  mutable next_tid : int;
  func_task : (string, G.task_id) Hashtbl.t;
  loop_task : (string * I.label, G.task_id) Hashtbl.t;
  livein_regs : (G.task_id, I.reg list) Hashtbl.t;
  liveout_regs : (G.task_id, I.reg list) Hashtbl.t;
  func_touch : (string, (int * bool) list) Hashtbl.t;
      (** memory-space footprint (space, writes?) of a function,
          transitively through its calls *)
  loop_touch : (string * I.label, (int * bool) list) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Per-function helpers                                                 *)

let reg_types (f : F.t) : (I.reg, T.ty) Hashtbl.t =
  let h = Hashtbl.create 64 in
  List.iter (fun (p : F.param) -> Hashtbl.replace h p.preg p.pty) f.params;
  F.iter_instrs (fun ins -> Hashtbl.replace h ins.I.id ins.I.ty) f;
  h

let instr_uses (ins : I.t) = I.used_regs ins

let term_uses (t : I.terminator) =
  match t with
  | CondBr (Reg r, _, _) -> [ r ]
  | Ret (Some (Reg r)) -> [ r ]
  | _ -> []

(** Registers used within the given blocks (instruction operands and
    terminator conditions). *)
let uses_in_blocks (f : F.t) (labels : I.label list) : I.reg list =
  let acc = ref [] in
  List.iter
    (fun l ->
      let b = F.block f l in
      List.iter (fun ins -> acc := instr_uses ins @ !acc) b.instrs;
      acc := term_uses b.term @ !acc)
    labels;
  List.sort_uniq compare !acc

let defs_in_blocks (f : F.t) (labels : I.label list) : I.reg list =
  let acc = ref [] in
  List.iter
    (fun l ->
      let b = F.block f l in
      List.iter (fun (ins : I.t) -> acc := ins.id :: !acc) b.instrs)
    labels;
  List.sort_uniq compare !acc

(** Loops directly nested inside [lp] (or at top level if [lp=None]). *)
let direct_inner_loops (f : F.t) (lp : F.loop_info option) :
    F.loop_info list =
  match lp with
  | None -> List.filter (fun (l : F.loop_info) -> l.depth = 1) f.loops
  | Some outer ->
    List.filter
      (fun (l : F.loop_info) ->
        l.depth = outer.depth + 1 && List.mem l.header outer.body)
      f.loops

(** Region blocks of a task: for a function, everything outside any
    loop; for a loop, its body minus the bodies of directly-inner
    loops (whose blocks belong to the child tasks). *)
let region_blocks (f : F.t) (lp : F.loop_info option) : I.label list =
  match lp with
  | None ->
    List.filter_map
      (fun (b : F.block) ->
        if List.exists (fun (l : F.loop_info) -> List.mem b.label l.body)
             f.loops
        then None
        else Some b.label)
      f.blocks
  | Some outer ->
    let inner = direct_inner_loops f (Some outer) in
    List.filter
      (fun l ->
        not
          (List.exists (fun (il : F.loop_info) -> List.mem l il.body) inner))
      outer.body

(** Live-in registers of loop [lp]: used inside, defined outside. *)
let loop_liveins (f : F.t) (lp : F.loop_info) : I.reg list =
  let uses = uses_in_blocks f lp.body in
  let defs = defs_in_blocks f lp.body in
  List.filter (fun r -> not (List.mem r defs)) uses

(** Live-out registers of loop [lp]: header phis used outside. *)
let loop_liveouts (f : F.t) (lp : F.loop_info) : I.reg list =
  let header = F.block f lp.header in
  let phis =
    List.filter_map
      (fun (ins : I.t) ->
        match ins.kind with Phi _ -> Some ins.id | _ -> None)
      header.instrs
  in
  let outside =
    List.filter (fun (b : F.block) -> not (List.mem b.label lp.body)) f.blocks
  in
  let used_outside r =
    List.exists
      (fun (b : F.block) ->
        List.exists (fun ins -> List.mem r (instr_uses ins)) b.instrs
        || List.mem r (term_uses b.term))
      outside
  in
  List.filter used_outside phis

(** Allocation-site points-to: trace an address operand back to the
    global array it indexes.  Returns 0 (the unified global space)
    when the base cannot be identified. *)
let rec space_of_operand (st : st) (f : F.t) (op : I.operand) : int =
  match op with
  | GlobalAddr g -> (P.find_global st.prog g).gspace
  | Reg r -> (
    match F.find_instr f r with
    | Some { kind = Gep { base; _ }; _ } -> space_of_operand st f base
    | Some { kind = Bin ((Add | Sub), a, b); _ } ->
      let sa = space_of_operand st f a and sb = space_of_operand st f b in
      if sa <> 0 then sa else sb
    | _ -> 0)
  | _ -> 0

let global_base (st : st) (g : string) = (P.find_global st.prog g).gbase

(* ------------------------------------------------------------------ *)
(* Affine address analysis (the dependence side of Algorithm 2)         *)

(** Address as an affine form: [abase + Σ coeff·reg + akonst], where
    the leaf registers are values the expansion cannot see through
    (phis and function parameters).  Used to prove that pipelined loop
    iterations touch distinct addresses and need no serializing
    memory-order chain. *)
type affine = {
  abase : int option;          (** resolved global base address *)
  acoeffs : (I.reg * int) list;  (** sorted by register *)
  akonst : int;
}

let aff_const k = Some { abase = None; acoeffs = []; akonst = k }

let aff_add (a : affine) (b : affine) ~(sign : int) : affine option =
  match a.abase, b.abase with
  | Some _, Some _ -> None  (* adding two pointers: give up *)
  | _ ->
    let merged =
      List.fold_left
        (fun acc (r, c) ->
          let c = sign * c in
          match List.assoc_opt r acc with
          | Some c0 -> (r, c0 + c) :: List.remove_assoc r acc
          | None -> (r, c) :: acc)
        a.acoeffs b.acoeffs
    in
    Some
      { abase = (if a.abase <> None then a.abase else b.abase);
        acoeffs =
          List.sort compare (List.filter (fun (_, c) -> c <> 0) merged);
        akonst = a.akonst + (sign * b.akonst) }

let aff_scale (a : affine) (k : int) : affine option =
  if a.abase <> None && k <> 1 then None
  else
    Some
      { a with
        acoeffs = List.map (fun (r, c) -> (r, c * k)) a.acoeffs;
        akonst = a.akonst * k }

let rec affine_of (st : st) (f : F.t) ?(depth = 12) (op : I.operand) :
    affine option =
  if depth = 0 then None
  else
    let recurse o = affine_of st f ~depth:(depth - 1) o in
    match op with
    | CInt c -> aff_const (Int64.to_int c)
    | CBool _ | CFloat _ -> None
    | GlobalAddr g ->
      Some { abase = Some (global_base st g); acoeffs = []; akonst = 0 }
    | Reg r -> (
      match F.find_instr f r with
      | None ->
        (* function parameter: leaf *)
        Some { abase = None; acoeffs = [ (r, 1) ]; akonst = 0 }
      | Some { kind = Phi _; _ } ->
        Some { abase = None; acoeffs = [ (r, 1) ]; akonst = 0 }
      | Some { kind = Gep { base; index; scale }; _ } -> (
        match recurse base, recurse index with
        | Some b, Some i -> (
          match aff_scale i scale with
          | Some i' -> aff_add b i' ~sign:1
          | None -> None)
        | _ -> None)
      | Some { kind = Bin (Add, a, b); _ } -> (
        match recurse a, recurse b with
        | Some x, Some y -> aff_add x y ~sign:1
        | _ -> None)
      | Some { kind = Bin (Sub, a, b); _ } -> (
        match recurse a, recurse b with
        | Some x, Some y -> aff_add x y ~sign:(-1)
        | _ -> None)
      | Some { kind = Bin (Mul, a, CInt k); _ } -> (
        match recurse a with
        | Some x -> aff_scale x (Int64.to_int k)
        | None -> None)
      | Some { kind = Bin (Mul, CInt k, b); _ } -> (
        match recurse b with
        | Some x -> aff_scale x (Int64.to_int k)
        | None -> None)
      | Some _ -> None)

let affine_equal (a : affine) (b : affine) =
  a.abase = b.abase && a.acoeffs = b.acoeffs && a.akonst = b.akonst

(** Does the form advance with one of [vars] (a per-iteration or
    per-invocation variable)?  If every access in a space has the same
    advancing form, successive waves touch distinct addresses. *)
let affine_advances (a : affine) (vars : I.reg list) =
  List.exists (fun (r, c) -> c <> 0 && List.mem r vars) a.acoeffs

(* ------------------------------------------------------------------ *)
(* Stage 1: enumerate tasks                                             *)

let task_of_loop_name (f : F.t) (lp : F.loop_info) =
  Fmt.str "%s.loop%d" f.name lp.header

(** Memory-space footprints.  [compute_touch] runs a fixpoint over the
    call graph so that a task's footprint includes everything its
    callees touch — the collapsed-call ordering chains below depend on
    it.  Spawned children are excluded: Cilk's race-freedom contract
    means their effects are ordered by [sync], not by the chains. *)
let direct_touch (st : st) (f : F.t) (labels : I.label list) :
    (int * bool) list * string list =
  let touches = ref [] and callees = ref [] in
  let add sp w =
    if not (List.mem (sp, w) !touches) then touches := (sp, w) :: !touches
  in
  List.iter
    (fun l ->
      let b = F.block f l in
      List.iter
        (fun (ins : I.t) ->
          match ins.kind with
          | Load { addr } | Tload { addr; _ } ->
            add (space_of_operand st f addr) false
          | Store { addr; _ } | Tstore { addr; _ } ->
            add (space_of_operand st f addr) true
          | Call { callee; _ } ->
            if not (List.mem callee !callees) then
              callees := callee :: !callees
          | _ -> ())
        b.instrs)
    labels;
  (!touches, !callees)

let compute_touch (st : st) : unit =
  let func_callees = Hashtbl.create 8 in
  List.iter
    (fun (f : F.t) ->
      let labels = List.map (fun (b : F.block) -> b.label) f.blocks in
      let t, cs = direct_touch st f labels in
      Hashtbl.replace st.func_touch f.name t;
      Hashtbl.replace func_callees f.name cs)
    st.prog.funcs;
  (* fixpoint over calls *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : F.t) ->
        let cur = Hashtbl.find st.func_touch f.name in
        let extra =
          List.concat_map
            (fun c -> try Hashtbl.find st.func_touch c with Not_found -> [])
            (Hashtbl.find func_callees f.name)
        in
        let merged =
          List.fold_left
            (fun acc t -> if List.mem t acc then acc else t :: acc)
            cur extra
        in
        if List.length merged <> List.length cur then begin
          Hashtbl.replace st.func_touch f.name merged;
          changed := true
        end)
      st.prog.funcs
  done;
  (* per-loop footprints: body blocks + callees inside the body *)
  List.iter
    (fun (f : F.t) ->
      List.iter
        (fun (lp : F.loop_info) ->
          let t, cs = direct_touch st f lp.body in
          let full =
            List.fold_left
              (fun acc c ->
                List.fold_left
                  (fun acc t -> if List.mem t acc then acc else t :: acc)
                  acc
                  (try Hashtbl.find st.func_touch c with Not_found -> []))
              t cs
          in
          Hashtbl.replace st.loop_touch (f.name, lp.header) full)
        f.loops)
    st.prog.funcs

let stage1 (st : st) =
  List.iter
    (fun (f : F.t) ->
      let rty = reg_types f in
      let ty_of r =
        match Hashtbl.find_opt rty r with
        | Some t -> t
        | None -> invalid_arg (Fmt.str "Build: unknown reg %%%d in %s" r f.name)
      in
      (* Function task. *)
      let ftid = st.next_tid in
      st.next_tid <- ftid + 1;
      let res_tys =
        T.TBool :: (if T.equal_ty f.ret T.TUnit then [] else [ f.ret ])
      in
      let ft =
        G.new_task ~tid:ftid ~tname:f.name ~tkind:G.Tfunc
          ~arg_tys:(T.TBool :: F.param_tys f)
          ~res_tys
      in
      Hashtbl.replace st.func_task f.name ftid;
      Hashtbl.replace st.livein_regs ftid (F.param_regs f);
      Hashtbl.replace st.liveout_regs ftid [];
      st.tasks <- st.tasks @ [ ft ];
      (* One task per loop. *)
      List.iter
        (fun (lp : F.loop_info) ->
          let tid = st.next_tid in
          st.next_tid <- tid + 1;
          let liveins = loop_liveins f lp in
          let liveouts = loop_liveouts f lp in
          let t =
            G.new_task ~tid
              ~tname:(task_of_loop_name f lp)
              ~tkind:(G.Tloop { parallel = lp.parallel })
              ~arg_tys:(T.TBool :: List.map ty_of liveins)
              ~res_tys:(T.TBool :: List.map ty_of liveouts)
          in
          Hashtbl.replace st.loop_task (f.name, lp.header) tid;
          Hashtbl.replace st.livein_regs tid liveins;
          Hashtbl.replace st.liveout_regs tid liveouts;
          st.tasks <- st.tasks @ [ t ])
        f.loops)
    st.prog.funcs

(* ------------------------------------------------------------------ *)
(* Stage 2: dataflow construction per task                              *)

type rctx = {
  st : st;
  f : F.t;
  gt : G.task;
  def : (I.reg, port) Hashtbl.t;
  blk_pred : (I.label, port) Hashtbl.t;
  edge_pred : (I.label * I.label, port) Hashtbl.t;
  rty : (I.reg, T.ty) Hashtbl.t;
  mutable rets : (port * [ `Port of port | `Imm of T.value ] option) list;
  mutable mem_order : ((int * bool) list * port * affine option) list;
      (** (touched (space, writes?) list, done port, address form),
          program order (reversed).  Entries are plain memory ops or
          collapsed calls whose children touch memory. *)
  mutable has_store : int list;  (** spaces written in this task *)
  mutable sync_order : port option;
  inner_exit : (I.label, I.label) Hashtbl.t;
}

type inp = [ `Port of port | `Imm of T.value ]

(** Create a node; wire ports/immediates; if every input is immediate,
    append a trigger input wired to [trigger] so the node fires once
    per wave. *)
let mk (ctx : rctx) ?(label = "") ~(ty : T.ty) (kind : G.node_kind)
    (inputs : inp list) ~(trigger : port) : G.node =
  let has_wire = List.exists (function `Port _ -> true | `Imm _ -> false) inputs in
  let inputs = if has_wire then inputs else inputs @ [ `Port trigger ] in
  let n = G.add_node ctx.gt ~label ~ty kind ~nins:(List.length inputs) in
  List.iteri
    (fun i -> function
      | `Imm v -> G.set_imm n i v
      | `Port p -> ignore (G.connect ctx.gt ~src:p ~dst:(n.nid, i)))
    inputs;
  n

let add_input (ctx : rctx) (n : G.node) (inp : inp) =
  let i = Array.length n.ins in
  n.ins <- Array.append n.ins [| G.Swire |];
  match inp with
  | `Imm v -> G.set_imm n i v
  | `Port p -> ignore (G.connect ctx.gt ~src:p ~dst:(n.nid, i))

let slot_of (ctx : rctx) (op : I.operand) : inp =
  match op with
  | Reg r -> (
    match Hashtbl.find_opt ctx.def r with
    | Some p -> `Port p
    | None ->
      invalid_arg
        (Fmt.str "Build: no dataflow def for %%%d in task %s" r
           ctx.gt.tname))
  | CInt i -> `Imm (VInt i)
  | CBool b -> `Imm (VBool b)
  | CFloat f -> `Imm (VFloat f)
  | GlobalAddr g -> `Imm (VInt (Int64.of_int (global_base ctx.st g)))

let p_and ctx a b ~trigger =
  (mk ctx ~ty:T.TBool (Compute (Fibin And)) [ a; b ] ~trigger).nid, 0

let p_or ctx a b ~trigger =
  (mk ctx ~ty:T.TBool (Compute (Fibin Or)) [ a; b ] ~trigger).nid, 0

let p_not ctx a ~trigger =
  (mk ctx ~ty:T.TBool (Compute (Fibin Xor)) [ a; `Imm (T.VInt 1L) ] ~trigger)
    .nid, 0

let ty_of_reg ctx r =
  match Hashtbl.find_opt ctx.rty r with Some t -> t | None -> T.i32

(** Region successors of a block, with inner loops collapsed to their
    exit blocks and back edges removed. *)
let region_succ (ctx : rctx) ~(region : I.label list)
    ~(own_header : I.label option) (b : F.block) : I.label list =
  let adjust l =
    if Some l = own_header then None (* back edge of this loop task *)
    else
      match Hashtbl.find_opt ctx.inner_exit l with
      | Some exit -> Some exit (* through the collapsed inner loop *)
      | None -> if List.mem l region then Some l else None
  in
  List.filter_map adjust (F.successors b)

let topo_order (ctx : rctx) ~(region : I.label list)
    ~(own_header : I.label option) ~(entry : I.label) : I.label list =
  let indeg = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace indeg l 0) region;
  List.iter
    (fun l ->
      List.iter
        (fun s ->
          Hashtbl.replace indeg s (1 + try Hashtbl.find indeg s with Not_found -> 0))
        (region_succ ctx ~region ~own_header (F.block ctx.f l)))
    region;
  let ready = Queue.create () in
  (* The entry first; any other zero-indegree block would be dead. *)
  Queue.add entry ready;
  let out = ref [] in
  let seen = Hashtbl.create 16 in
  while not (Queue.is_empty ready) do
    let l = Queue.pop ready in
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.add seen l ();
      out := l :: !out;
      List.iter
        (fun s ->
          let d = Hashtbl.find indeg s - 1 in
          Hashtbl.replace indeg s d;
          if d = 0 then Queue.add s ready)
        (region_succ ctx ~region ~own_header (F.block ctx.f l))
    end
  done;
  List.rev !out

(** Region predecessors (after collapsing), as (pred_label, this). *)
let region_preds (ctx : rctx) ~(region : I.label list)
    ~(own_header : I.label option) (l : I.label) : I.label list =
  List.filter
    (fun p ->
      List.mem l (region_succ ctx ~region ~own_header (F.block ctx.f p)))
    region

(* --- instruction lowering ------------------------------------------- *)

let fu_of_kind (k : I.kind) : G.fu_op =
  match k with
  | Bin (op, _, _) -> Fibin op
  | Fbin (op, _, _) -> Ffbin op
  | Icmp (op, _, _) -> Ficmp op
  | Fcmp (op, _, _) -> Ffcmp op
  | Funary (op, _) -> Ffunary op
  | Cast (op, _) -> Fcast op
  | Select _ -> Fselect
  | Gep { scale; _ } -> Fgep scale
  | _ -> invalid_arg "fu_of_kind: not a pure op"

let memory_done_port (n : G.node) : port =
  match n.kind with
  | Load _ | Tload _ -> (n.nid, 1)
  | Store _ | Tstore _ -> (n.nid, 0)
  | _ -> invalid_arg "memory_done_port"

(** Record a collapsed call in the ordering chains when its child
    subtree touches memory. *)
let note_call (ctx : rctx) (n : G.node) (touches : (int * bool) list) =
  if touches <> [] then begin
    ctx.mem_order <- (touches, (n.nid, 0), None) :: ctx.mem_order;
    List.iter
      (fun (sp, w) ->
        if w && not (List.mem sp ctx.has_store) then
          ctx.has_store <- sp :: ctx.has_store)
      touches
  end

(** Record a memory node for the ordering chains and attach any
    pending sync-ordering input. *)
let note_memory (ctx : rctx) (space : int) (n : G.node) ~is_store
    ~(addr : I.operand) =
  (match ctx.sync_order with
  | Some p -> add_input ctx n (`Port p)
  | None -> ());
  let aff = affine_of ctx.st ctx.f addr in
  ctx.mem_order <-
    ([ (space, is_store) ], memory_done_port n, aff) :: ctx.mem_order;
  if is_store && not (List.mem space ctx.has_store) then
    ctx.has_store <- space :: ctx.has_store

let lower_instr (ctx : rctx) ~(pred : port) (ins : I.t) : unit =
  let bind p = Hashtbl.replace ctx.def ins.id p in
  match ins.kind with
  | Bin _ | Fbin _ | Icmp _ | Fcmp _ | Funary _ | Cast _ | Select _ | Gep _
    ->
    let n =
      mk ctx ~ty:ins.ty
        (Compute (fu_of_kind ins.kind))
        (List.map (slot_of ctx) (I.operands ins))
        ~trigger:pred
        ~label:(Fmt.str "%%%d" ins.id)
    in
    bind (n.nid, 0)
  | Phi _ -> invalid_arg "lower_instr: phi handled at block level"
  | Load { addr } ->
    let space = space_of_operand ctx.st ctx.f addr in
    let n =
      mk ctx ~ty:ins.ty (Load { space })
        [ `Port pred; slot_of ctx addr ]
        ~trigger:pred ~label:(Fmt.str "%%%d" ins.id)
    in
    note_memory ctx space n ~is_store:false ~addr;
    bind (n.nid, 0)
  | Store { addr; value } ->
    let space = space_of_operand ctx.st ctx.f addr in
    let n =
      mk ctx ~ty:T.TUnit (Store { space })
        [ `Port pred; slot_of ctx addr; slot_of ctx value ]
        ~trigger:pred
    in
    note_memory ctx space n ~is_store:true ~addr
  | Tload { addr; row_stride; shape } ->
    let space = space_of_operand ctx.st ctx.f addr in
    let n =
      mk ctx ~ty:ins.ty (Tload { space; shape })
        [ `Port pred; slot_of ctx addr; slot_of ctx row_stride ]
        ~trigger:pred
    in
    note_memory ctx space n ~is_store:false ~addr;
    bind (n.nid, 0)
  | Tstore { addr; row_stride; value; shape } ->
    let space = space_of_operand ctx.st ctx.f addr in
    let n =
      mk ctx ~ty:T.TUnit (Tstore { space; shape })
        [ `Port pred; slot_of ctx addr; slot_of ctx row_stride;
          slot_of ctx value ]
        ~trigger:pred
    in
    note_memory ctx space n ~is_store:true ~addr
  | Tbin (op, a, b) ->
    let top = match op with I.Tmul -> G.Tmul2 | I.Tadd -> G.Tadd2 in
    let n =
      mk ctx ~ty:ins.ty
        (Tcompute { top; dedicated = false })
        [ slot_of ctx a; slot_of ctx b ]
        ~trigger:pred
    in
    bind (n.nid, 0)
  | Tunary (op, a) ->
    let top = match op with I.Trelu -> G.Trelu2 in
    let n =
      mk ctx ~ty:ins.ty
        (Tcompute { top; dedicated = false })
        [ slot_of ctx a ] ~trigger:pred
    in
    bind (n.nid, 0)
  | Call { callee; args } ->
    let tid = Hashtbl.find ctx.st.func_task callee in
    let n =
      mk ctx ~ty:T.TBool (CallChild tid)
        (`Port pred :: List.map (slot_of ctx) args)
        ~trigger:pred ~label:("call " ^ callee)
    in
    (match ctx.sync_order with
    | Some p -> add_input ctx n (`Port p)
    | None -> ());
    note_call ctx n
      (try Hashtbl.find ctx.st.func_touch callee with Not_found -> []);
    if not (List.mem tid ctx.gt.children) then
      ctx.gt.children <- ctx.gt.children @ [ tid ];
    if not (T.equal_ty ins.ty T.TUnit) then bind (n.nid, 1)
  | Spawn { callee; args } ->
    let tid = Hashtbl.find ctx.st.func_task callee in
    let n =
      mk ctx ~ty:ins.ty (SpawnChild tid)
        (`Port pred :: List.map (slot_of ctx) args)
        ~trigger:pred ~label:("spawn " ^ callee)
    in
    (match ctx.sync_order with
    | Some p -> add_input ctx n (`Port p)
    | None -> ());
    if not (List.mem tid ctx.gt.children) then
      ctx.gt.children <- ctx.gt.children @ [ tid ];
    if not (T.equal_ty ins.ty T.TUnit) then bind (n.nid, 0)
  | Sync ->
    let n = mk ctx ~ty:T.TBool SyncWait [ `Port pred ] ~trigger:pred in
    ctx.sync_order <- Some (n.nid, 0)

(** Lower an inner loop [lp] reached from region block [b]: collapse
    it to a [CallChild] super-node and record the collapsed edge
    predicate (the call's done token). *)
let lower_inner_loop (ctx : rctx) ~(pred : port) (lp : F.loop_info)
    (b : I.label) : unit =
  let tid = Hashtbl.find ctx.st.loop_task (ctx.f.name, lp.header) in
  let liveins = Hashtbl.find ctx.st.livein_regs tid in
  let liveouts = Hashtbl.find ctx.st.liveout_regs tid in
  let n =
    mk ctx ~ty:T.TBool (CallChild tid)
      (`Port pred :: List.map (fun r -> slot_of ctx (I.Reg r)) liveins)
      ~trigger:pred
      ~label:(Fmt.str "loop bb%d" lp.header)
  in
  (match ctx.sync_order with
  | Some p -> add_input ctx n (`Port p)
  | None -> ());
  note_call ctx n
    (try Hashtbl.find ctx.st.loop_touch (ctx.f.name, lp.header)
     with Not_found -> []);
  if not (List.mem tid ctx.gt.children) then
    ctx.gt.children <- ctx.gt.children @ [ tid ];
  List.iteri (fun i r -> Hashtbl.replace ctx.def r (n.nid, i + 1)) liveouts;
  Hashtbl.replace ctx.edge_pred (b, lp.exit) (n.nid, 0)

(** Process one region block: compute its predicate, lower phis as
    merges, lower instructions, handle the terminator. *)
let lower_block (ctx : rctx) ~(region : I.label list)
    ~(own_header : I.label option) ~(entry_pred : port) ~(entry : I.label)
    (l : I.label) : unit =
  let b = F.block ctx.f l in
  (* Block predicate: OR of incoming edge predicates. *)
  let preds_in = region_preds ctx ~region ~own_header l in
  let pred =
    if l = entry then entry_pred
    else begin
      let eps =
        List.map
          (fun p ->
            match Hashtbl.find_opt ctx.edge_pred (p, l) with
            | Some ep -> ep
            | None ->
              invalid_arg
                (Fmt.str "Build: missing edge pred bb%d->bb%d in %s" p l
                   ctx.gt.tname))
          preds_in
      in
      match eps with
      | [] -> entry_pred (* unreachable block; keep it inert *)
      | [ e ] -> e
      | e :: rest ->
        List.fold_left
          (fun acc ep -> p_or ctx (`Port acc) (`Port ep) ~trigger:entry_pred)
          e rest
    end
  in
  Hashtbl.replace ctx.blk_pred l pred;
  (* Phis (if-joins): k-way merges keyed on incoming edge predicates. *)
  let phis, instrs =
    List.partition
      (fun (ins : I.t) -> match ins.kind with Phi _ -> true | _ -> false)
      b.instrs
  in
  List.iter
    (fun (ins : I.t) ->
      match ins.kind with
      | Phi incoming ->
        let incoming =
          List.filter (fun (src, _) -> List.mem src preds_in) incoming
        in
        let k = List.length incoming in
        if k = 1 then
          (* Degenerate merge: value passes through. *)
          let v = slot_of ctx (snd (List.hd incoming)) in
          let n =
            mk ctx ~ty:ins.ty (Compute Fident) [ v ] ~trigger:pred
              ~label:(Fmt.str "%%%d" ins.id)
          in
          Hashtbl.replace ctx.def ins.id (n.nid, 0)
        else begin
          let eps =
            List.map
              (fun (src, _) -> `Port (Hashtbl.find ctx.edge_pred (src, l)))
              incoming
          in
          let vals = List.map (fun (_, op) -> slot_of ctx op) incoming in
          let n =
            mk ctx ~ty:ins.ty (Merge k) (eps @ vals) ~trigger:pred
              ~label:(Fmt.str "%%%d" ins.id)
          in
          Hashtbl.replace ctx.def ins.id (n.nid, 0)
        end
      | _ -> assert false)
    phis;
  List.iter (fun ins -> lower_instr ctx ~pred ins) instrs;
  (* Terminator: record edge predicates / returns / inner-loop calls. *)
  match b.term with
  | Br tgt -> (
    match
      List.find_opt
        (fun (lp : F.loop_info) -> lp.header = tgt)
        ctx.f.loops
    with
    | Some lp when Hashtbl.mem ctx.inner_exit tgt ->
      lower_inner_loop ctx ~pred lp l
    | _ ->
      if Some tgt = own_header then () (* loop back edge: handled by steers *)
      else Hashtbl.replace ctx.edge_pred (l, tgt) pred)
  | CondBr (c, t, e) ->
    let pc = slot_of ctx c in
    let p_t = p_and ctx (`Port pred) pc ~trigger:pred in
    let p_f =
      p_and ctx (`Port pred) (`Port (p_not ctx pc ~trigger:pred)) ~trigger:pred
    in
    Hashtbl.replace ctx.edge_pred (l, t) p_t;
    Hashtbl.replace ctx.edge_pred (l, e) p_f
  | Ret None -> ctx.rets <- (pred, None) :: ctx.rets
  | Ret (Some op) -> ctx.rets <- (pred, Some (slot_of ctx op)) :: ctx.rets

(** Add the per-space memory ordering chains.  A space needs no
    serializing chain when every access to it shares one affine
    address form that advances with the task's own per-wave variables:
    successive waves then provably touch distinct addresses (and the
    same-wave load-before-store order is a value dependence already
    present in the dataflow). *)
let add_memory_chains (ctx : rctx) ~(own_vars : I.reg list) =
  let ops = List.rev ctx.mem_order in
  let spaces_written = ctx.has_store in
  let touches_space touches s =
    List.exists (fun (sp, _) -> sp = s || sp = 0) touches
  in
  let space_independent s =
    let forms =
      List.filter_map
        (fun (touches, _, aff) ->
          if touches_space touches s then Some aff else None)
        ops
    in
    match forms with
    | Some first :: rest ->
      affine_advances first own_vars
      && List.for_all
           (function Some a -> affine_equal a first | None -> false)
           rest
    | _ -> false
  in
  let is_call (p : port) =
    match (G.node ctx.gt (fst p)).kind with
    | G.CallChild _ -> true
    | _ -> false
  in
  let self_chain (single : port) =
    (* One collapsed call per wave whose child writes this space:
       successive invocations may self-conflict (e.g. successive FFT
       stages), so wave k+1's call waits for wave k's completion.  A
       plain single store needs nothing — per-bank FIFO order
       suffices. *)
    let n = G.node ctx.gt (fst single) in
    let i = Array.length n.ins in
    n.ins <- Array.append n.ins [| G.Swire |];
    ignore
      (G.connect ctx.gt ~src:single ~dst:(n.nid, i)
         ~initial:[ T.VBool true ] ~capacity:2)
  in
  let chain (dones : port list) =
    match dones with
    | [] -> ()
    | [ single ] -> if is_call single then self_chain single
    | first :: _ ->
      let rec link = function
        | a :: (b :: _ as rest) ->
          let nb = G.node ctx.gt (fst b) in
          add_input ctx nb (`Port a);
          link rest
        | [ last ] ->
          (* Cyclic: the first op of wave k+1 waits for the last op of
             wave k; an initial token lets wave 0 proceed. *)
          let nf = G.node ctx.gt (fst first) in
          let i = Array.length nf.ins in
          nf.ins <- Array.append nf.ins [| G.Swire |];
          ignore
            (G.connect ctx.gt ~src:last ~dst:(nf.nid, i)
               ~initial:[ T.VBool true ] ~capacity:2)
        | [] -> ()
      in
      link dones
  in
  if List.mem 0 spaces_written then
    (* A store through an unidentified pointer may alias anything:
       serialize every memory operation in the task. *)
    chain (List.map (fun (_, d, _) -> d) ops)
  else begin
    (* An entry may belong to several space chains (calls touching
       many arrays): chain each space separately but never add the
       same ordering edge twice. *)
    let linked = Hashtbl.create 16 in
    let chain_once dones =
      let key = List.map fst dones in
      if not (Hashtbl.mem linked key) then begin
        Hashtbl.add linked key ();
        chain dones
      end
    in
    List.iter
      (fun s ->
        if not (space_independent s) then
          chain_once
            (List.filter_map
               (fun (touches, d, _) ->
                 if touches_space touches s then Some d else None)
               ops))
      spaces_written
  end

(** Emit the function-task live-outs from the collected returns. *)
let emit_func_liveouts (ctx : rctx) ~(entry_pred : port) =
  let has_value = List.length ctx.gt.res_tys > 1 in
  let rets = List.rev ctx.rets in
  let done_port, value_port =
    match rets with
    | [] ->
      (* No explicit return: done = entry token. *)
      (entry_pred, None)
    | [ (p, v) ] -> (p, v)
    | many ->
      let k = List.length many in
      let preds = List.map (fun (p, _) -> `Port p) many in
      let dn =
        mk ctx ~ty:T.TBool (Merge k) (preds @ preds) ~trigger:entry_pred
          ~label:"ret.token"
      in
      let v =
        if has_value then begin
          let vals =
            List.map
              (fun (_, v) ->
                match v with
                | Some s -> s
                | None -> `Imm (T.VInt 0L))
              many
          in
          let vn =
            mk ctx
              ~ty:(List.nth ctx.gt.res_tys 1)
              (Merge k) (preds @ vals) ~trigger:entry_pred ~label:"ret.value"
          in
          Some (`Port ((vn.nid, 0) : port))
        end
        else None
      in
      ((dn.nid, 0), v)
  in
  let lo0 =
    mk ctx ~ty:T.TBool (LiveOut 0) [ `Port done_port ] ~trigger:entry_pred
  in
  ignore lo0;
  if has_value then begin
    let v =
      match value_port with
      | Some s -> s
      | None -> `Imm (T.VInt 0L)
    in
    ignore
      (mk ctx
         ~ty:(List.nth ctx.gt.res_tys 1)
         (LiveOut 1) [ v ] ~trigger:entry_pred)
  end

(** Build the dataflow of a function task. *)
let build_func_task (st : st) (f : F.t) (gt : G.task) =
  let ctx =
    { st; f; gt; def = Hashtbl.create 64; blk_pred = Hashtbl.create 16;
      edge_pred = Hashtbl.create 16; rty = reg_types f; rets = [];
      mem_order = []; has_store = []; sync_order = None;
      inner_exit = Hashtbl.create 8 }
  in
  List.iter
    (fun (lp : F.loop_info) ->
      if lp.depth = 1 then Hashtbl.replace ctx.inner_exit lp.header lp.exit)
    f.loops;
  (* Live-ins: token + parameters. *)
  let token =
    G.add_node gt ~ty:T.TBool (LiveIn 0) ~nins:0 ~label:"task.token"
  in
  let entry_pred = (token.nid, 0) in
  List.iteri
    (fun i (p : F.param) ->
      let n =
        G.add_node gt ~ty:p.pty (LiveIn (i + 1)) ~nins:0 ~label:p.pname
      in
      Hashtbl.replace ctx.def p.preg (n.nid, 0))
    f.params;
  let region = region_blocks f None in
  let entry = (F.entry f).label in
  let order = topo_order ctx ~region ~own_header:None ~entry in
  List.iter
    (fun l -> lower_block ctx ~region ~own_header:None ~entry_pred ~entry l)
    order;
  add_memory_chains ctx ~own_vars:(F.param_regs f);
  emit_func_liveouts ctx ~entry_pred

(** Build the dataflow of a loop task using the μ/steer loop schema. *)
let build_loop_task (st : st) (f : F.t) (lp : F.loop_info) (gt : G.task) =
  let ctx =
    { st; f; gt; def = Hashtbl.create 64; blk_pred = Hashtbl.create 16;
      edge_pred = Hashtbl.create 16; rty = reg_types f; rets = [];
      mem_order = []; has_store = []; sync_order = None;
      inner_exit = Hashtbl.create 8 }
  in
  List.iter
    (fun (il : F.loop_info) ->
      if il.depth = lp.depth + 1 && List.mem il.header lp.body then
        Hashtbl.replace ctx.inner_exit il.header il.exit)
    f.loops;
  let liveins = Hashtbl.find st.livein_regs gt.tid in
  let liveouts = Hashtbl.find st.liveout_regs gt.tid in
  (* Live-in nodes. *)
  let token =
    G.add_node gt ~ty:T.TBool (LiveIn 0) ~nins:0 ~label:"task.token"
  in
  let livein_node =
    List.mapi
      (fun i r ->
        let n =
          G.add_node gt ~ty:(ty_of_reg ctx r) (LiveIn (i + 1)) ~nins:0
            ~label:(Fmt.str "%%%d" r)
        in
        (r, n))
      liveins
  in
  (* Header phis: carried variables. *)
  let header_blk = F.block f lp.header in
  let phis =
    List.filter_map
      (fun (ins : I.t) ->
        match ins.kind with
        | Phi incoming ->
          let init =
            match List.assoc_opt lp.preheader incoming with
            | Some op -> op
            | None -> invalid_arg "Build: loop phi missing preheader incoming"
          in
          let back =
            match List.assoc_opt lp.latch incoming with
            | Some op -> op
            | None -> invalid_arg "Build: loop phi missing latch incoming"
          in
          Some (ins.id, ins.ty, init, back)
        | _ -> None)
      header_blk.instrs
  in
  (* The token is carried variable 0. *)
  let mu_tok =
    G.add_node gt ~ty:T.TBool MergeLoop ~nins:3 ~label:"mu.token"
  in
  ignore (G.connect gt ~src:(token.nid, 0) ~dst:(mu_tok.nid, 1));
  (* μ node per header phi.  A constant initial value must still be
     delivered exactly once per invocation, so it is materialized by a
     pass-through node triggered by the invocation token. *)
  let const_init (mu : G.node) (v : T.value) =
    let cn =
      G.add_node gt ~ty:mu.nty (Compute Fident) ~nins:2 ~label:"init.const"
    in
    G.set_imm cn 0 v;
    ignore (G.connect gt ~src:(token.nid, 0) ~dst:(cn.nid, 1));
    ignore (G.connect gt ~src:(cn.nid, 0) ~dst:(mu.nid, 1))
  in
  let mus =
    List.map
      (fun (r, ty, init, back) ->
        let mu =
          G.add_node gt ~ty MergeLoop ~nins:3 ~label:(Fmt.str "mu %%%d" r)
        in
        (match init with
        | I.Reg ri ->
          let _, li = List.find (fun (x, _) -> x = ri) livein_node in
          ignore (G.connect gt ~src:(li.nid, 0) ~dst:(mu.nid, 1))
        | I.CInt i -> const_init mu (VInt i)
        | I.CBool b -> const_init mu (VBool b)
        | I.CFloat x -> const_init mu (VFloat x)
        | I.GlobalAddr g ->
          const_init mu (VInt (Int64.of_int (global_base st g))));
        Hashtbl.replace ctx.def r (mu.nid, 0);
        (r, mu, back))
      phis
  in
  (* Invariant live-ins used directly by region instructions also get a
     μ ring so each iteration re-receives their value. *)
  let region = region_blocks f (Some lp) in
  let region_uses =
    let base = uses_in_blocks f region in
    (* plus live-ins that inner loops consume *)
    let inner =
      Hashtbl.fold
        (fun hdr _ acc ->
          let tid = Hashtbl.find st.loop_task (f.name, hdr) in
          Hashtbl.find st.livein_regs tid @ acc)
        ctx.inner_exit []
    in
    List.sort_uniq compare (base @ inner)
  in
  let invariants =
    List.filter
      (fun r ->
        List.mem r region_uses
        && not (List.exists (fun (pr, _, _, _) -> pr = r) phis))
      liveins
  in
  let inv_mus =
    List.map
      (fun r ->
        let _, li = List.find (fun (x, _) -> x = r) livein_node in
        let mu =
          G.add_node gt ~ty:(ty_of_reg ctx r) MergeLoop ~nins:3
            ~label:(Fmt.str "mu.inv %%%d" r)
        in
        ignore (G.connect gt ~src:(li.nid, 0) ~dst:(mu.nid, 1));
        Hashtbl.replace ctx.def r (mu.nid, 0);
        mu)
      invariants
  in
  (* Lower the region, entry = header.  The header's phis were already
     consumed above; lower_block skips phis when the def is present. *)
  let entry_pred = (mu_tok.nid, 0) in
  Hashtbl.replace ctx.blk_pred lp.header entry_pred;
  (* Header instructions (condition computation). *)
  let header_instrs =
    List.filter
      (fun (ins : I.t) -> match ins.kind with Phi _ -> false | _ -> true)
      header_blk.instrs
  in
  List.iter (fun ins -> lower_instr ctx ~pred:entry_pred ins) header_instrs;
  let body_entry, p_port =
    match header_blk.term with
    | CondBr (c, t, _e) ->
      let pc = slot_of ctx c in
      let p =
        match pc with
        | `Port p -> p
        | `Imm _ ->
          (* Constant loop condition: materialize it per iteration. *)
          (mk ctx ~ty:T.TBool (Compute Fident) [ pc ] ~trigger:entry_pred)
            .nid, 0
      in
      (t, p)
    | _ -> invalid_arg "Build: loop header must end in a conditional branch"
  in
  Hashtbl.replace ctx.edge_pred (lp.header, body_entry) p_port;
  (* Remaining region blocks in topological order. *)
  let order =
    topo_order ctx ~region ~own_header:(Some lp.header) ~entry:lp.header
  in
  List.iter
    (fun l ->
      if l <> lp.header then
        lower_block ctx ~region ~own_header:(Some lp.header) ~entry_pred
          ~entry:lp.header l)
    order;
  add_memory_chains ctx ~own_vars:(List.map (fun (r, _, _, _) -> r) phis);
  (* Steers: route carried values around the back edge or out. *)
  let steer ?(label = "") data : G.node =
    mk ctx ~ty:T.TBool Steer [ `Port p_port; data ] ~trigger:entry_pred ~label
  in
  (* Token ring + done live-out. *)
  let st_tok = steer ~label:"steer.token" (`Port (mu_tok.nid, 0)) in
  st_tok.nty <- T.TBool;
  ignore (G.connect gt ~src:(st_tok.nid, 0) ~dst:(mu_tok.nid, 2));
  let lo0 = G.add_node gt ~ty:T.TBool (LiveOut 0) ~nins:1 ~label:"done" in
  ignore (G.connect gt ~src:(st_tok.nid, 1) ~dst:(lo0.nid, 0));
  (* Carried values: next-value steers feeding the μ back inputs. *)
  List.iter
    (fun (r, mu, back) ->
      let s =
        steer ~label:(Fmt.str "steer.next %%%d" r) (slot_of ctx back)
      in
      s.nty <- (G.node gt mu.G.nid).nty;
      ignore (G.connect gt ~src:(s.nid, 0) ~dst:(mu.G.nid, 2)))
    mus;
  List.iter
    (fun (mu : G.node) ->
      let s = steer ~label:"steer.inv" (`Port (mu.nid, 0)) in
      s.nty <- mu.nty;
      ignore (G.connect gt ~src:(s.nid, 0) ~dst:(mu.nid, 2)))
    inv_mus;
  (* Live-outs: current values of carried variables at loop exit. *)
  List.iteri
    (fun i r ->
      let _, mu, _ = List.find (fun (pr, _, _) -> pr = r) mus in
      let s =
        steer ~label:(Fmt.str "steer.out %%%d" r) (`Port (mu.G.nid, 0))
      in
      s.nty <- (G.node gt mu.G.nid).nty;
      let lo =
        G.add_node gt
          ~ty:(List.nth gt.res_tys (i + 1))
          (LiveOut (i + 1)) ~nins:1
          ~label:(Fmt.str "%%%d" r)
      in
      ignore (G.connect gt ~src:(s.nid, 1) ~dst:(lo.nid, 0)))
    liveouts;
  (* Control ring: the loop predicate drives every μ's ctl port, primed
     with an initial false so the first selection takes the inits. *)
  let all_mus =
    mu_tok :: List.map (fun (_, mu, _) -> mu) mus @ inv_mus
  in
  List.iter
    (fun (mu : G.node) ->
      ignore
        (G.connect gt ~src:p_port ~dst:(mu.nid, 0) ~capacity:2
           ~initial:[ T.VBool false ]))
    all_mus

(* ------------------------------------------------------------------ *)
(* Dead-node pruning                                                    *)

let prune_task (t : G.task) =
  let changed = ref true in
  while !changed do
    changed := false;
    let has_out = Hashtbl.create 64 in
    List.iter (fun (e : G.edge) -> Hashtbl.replace has_out (fst e.src) ()) t.edges;
    let dead (n : G.node) =
      match n.kind with
      | Compute _ | Fused _ | Merge _ | Tcompute _ | LiveIn _ ->
        not (Hashtbl.mem has_out n.nid)
      | _ -> false
    in
    let dead_nodes = List.filter dead t.nodes in
    if dead_nodes <> [] then begin
      changed := true;
      let dead_ids = List.map (fun (n : G.node) -> n.nid) dead_nodes in
      t.nodes <-
        List.filter (fun (n : G.node) -> not (List.mem n.nid dead_ids)) t.nodes;
      t.edges <-
        List.filter (fun (e : G.edge) -> not (List.mem (fst e.dst) dead_ids)) t.edges
    end
  done

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)

(** Default baseline memory system: a single shared 64 KB L1 cache in
    front of DRAM serving every address space (§6.4's baseline). *)
let default_memory (c : G.circuit) =
  let l1 =
    G.add_structure c ~sname:"l1"
      (Cache
         { banks = 1; line_words = 8; size_words = 8192; ways = 4;
           hit_latency = 2; miss_latency = 100 })
  in
  G.bind_space c 0 l1.sid;
  List.iter
    (fun (g : P.global) -> G.bind_space c g.gspace l1.sid)
    c.prog.globals

(** Build the baseline μIR circuit for [prog], rooted at [entry]. *)
let circuit ?(entry = "main") ?(name = "accelerator") (prog : P.t) :
    G.circuit =
  let st =
    { prog; tasks = []; next_tid = 0; func_task = Hashtbl.create 8;
      loop_task = Hashtbl.create 8; livein_regs = Hashtbl.create 8;
      liveout_regs = Hashtbl.create 8; func_touch = Hashtbl.create 8;
      loop_touch = Hashtbl.create 8 }
  in
  compute_touch st;
  stage1 st;
  List.iter
    (fun (f : F.t) ->
      let ftid = Hashtbl.find st.func_task f.name in
      build_func_task st f (List.nth st.tasks ftid);
      List.iter
        (fun (lp : F.loop_info) ->
          let tid = Hashtbl.find st.loop_task (f.name, lp.header) in
          build_loop_task st f lp (List.nth st.tasks tid))
        f.loops)
    prog.funcs;
  List.iter prune_task st.tasks;
  let root = Hashtbl.find st.func_task entry in
  let c =
    { G.cname = name; tasks = st.tasks; root; structures = [];
      space_map = []; junction_width = []; prog }
  in
  default_memory c;
  c
