(** Graphviz export of μIR circuits, one cluster per task block —
    the schematic view the paper draws in Figs. 4, 5 and 8. *)

module G = Graph

let node_shape (n : G.node) : string =
  match n.kind with
  | G.Compute _ | G.Fused _ -> "box"
  | G.FusedSteer _ -> "house"
  | G.Merge _ -> "invtrapezium"
  | G.MergeLoop -> "invtriangle"
  | G.Steer -> "triangle"
  | G.Load _ | G.Tload _ -> "cylinder"
  | G.Store _ | G.Tstore _ -> "cylinder"
  | G.Tcompute _ -> "box3d"
  | G.LiveIn _ | G.LiveOut _ -> "circle"
  | G.CallChild _ | G.SpawnChild _ -> "component"
  | G.SyncWait -> "doublecircle"

let node_color (n : G.node) : string =
  match n.kind with
  | G.Load _ | G.Store _ | G.Tload _ | G.Tstore _ -> "khaki"
  | G.CallChild _ | G.SpawnChild _ | G.SyncWait -> "lightblue"
  | G.MergeLoop | G.Steer | G.FusedSteer _ -> "lightsalmon"
  | G.Tcompute _ -> "plum"
  | G.LiveIn _ | G.LiveOut _ -> "palegreen"
  | _ -> "white"

(** A profile-driven overlay (built by [Muir_trace.Profile.heat]):
    [h_node] returns a fill color plus an annotation line for a node,
    [h_edge] a color for every edge leaving it.  [None] keeps the
    static styling. *)
type heat = {
  h_node : G.task_id -> G.node_id -> (string * string) option;
  h_edge : G.task_id -> G.node_id -> string option;
}

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(** Render [c] as a Graphviz digraph. *)
let render ?heat (c : G.circuit) : string =
  let buf = Buffer.create 4096 in
  let p fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  p "digraph \"%s\" {" (escape c.cname);
  p "  rankdir=TB; compound=true;";
  p "  node [fontname=\"Helvetica\", fontsize=10, style=filled];";
  List.iter
    (fun (t : G.task) ->
      p "  subgraph cluster_task%d {" t.tid;
      p "    label=\"%s (%s, %d tile%s, queue %d)\";" (escape t.tname)
        (match t.tkind with
        | G.Tfunc -> "func"
        | G.Tloop { parallel = true } -> "parallel loop"
        | G.Tloop _ -> "loop")
        t.tiles
        (if t.tiles = 1 then "" else "s")
        t.queue_depth;
      p "    color=gray60; style=rounded;";
      List.iter
        (fun (n : G.node) ->
          let overlay =
            match heat with
            | Some h -> h.h_node t.tid n.nid
            | None -> None
          in
          let fill, note =
            match overlay with
            | Some (color, note) -> (Fmt.str "\"%s\"" color, "\\n" ^ escape note)
            | None -> (node_color n, "")
          in
          p "    t%d_n%d [label=\"%s%s%s\", shape=%s, fillcolor=%s];" t.tid
            n.nid
            (escape (G.kind_to_string n.kind))
            (if n.label = "" then "" else "\\n" ^ escape n.label)
            note (node_shape n) fill)
        t.nodes;
      List.iter
        (fun (e : G.edge) ->
          let attrs =
            String.concat ","
              (List.filter
                 (fun s -> s <> "")
                 [ (if e.initial <> [] then "style=dashed,label=\"primed\""
                    else "");
                   (if e.capacity > 2 then
                      Fmt.str "penwidth=2,taillabel=\"%d\"" e.capacity
                    else "");
                   (match
                      Option.bind heat (fun h -> h.h_edge t.tid (fst e.src))
                    with
                   | Some color -> Fmt.str "color=\"%s\"" color
                   | None -> (
                     match e.ekind with
                     | G.Comb -> "color=red"
                     | G.Registered -> "")) ])
          in
          p "    t%d_n%d -> t%d_n%d [%s];" t.tid (fst e.src) t.tid
            (fst e.dst) attrs)
        t.edges;
      p "  }")
    c.tasks;
  (* task hierarchy edges *)
  List.iter
    (fun (t : G.task) ->
      List.iter
        (fun ch ->
          match (G.task c ch).nodes, t.nodes with
          | cn :: _, tn :: _ ->
            p
              "  t%d_n%d -> t%d_n%d [ltail=cluster_task%d, \
               lhead=cluster_task%d, style=bold, color=gray40];"
              t.tid tn.nid ch cn.nid t.tid ch
          | _ -> ())
        t.children)
    c.tasks;
  (* structures *)
  List.iter
    (fun (s : G.struct_inst) ->
      p "  struct%d [label=\"%s\", shape=cylinder, fillcolor=gold];" s.sid
        (escape (Fmt.str "%a" G.pp_structure s)))
    c.structures;
  List.iter
    (fun (sp, sid) ->
      (* connect each task that touches this space to the structure *)
      List.iter
        (fun (t : G.task) ->
          let touches =
            List.exists
              (fun n -> G.node_space n = Some sp)
              (G.memory_nodes t)
          in
          if touches then
            match G.memory_nodes t with
            | m :: _ ->
              p "  t%d_n%d -> struct%d [style=dotted, dir=both];" t.tid
                m.nid sid
            | [] -> ())
        c.tasks)
    c.space_map;
  p "}";
  Buffer.contents buf
