(** The μIR graph: a hierarchical, latency-agnostic structural
    description of an accelerator.

    A {!circuit} is a set of {!task}s (asynchronous execution blocks
    connected parent→child, as in §3.2 of the paper), a set of memory
    {!structure}s (scratchpads/caches, §3.4), and a mapping from
    program address spaces to structures.  Each task's internals are a
    pipelined dataflow of {!node}s connected by latency-insensitive
    {!edge}s (§3.3): every edge is a ready/valid channel; a node fires
    when every wired input port holds a token and emits on its output
    ports.  Timing of individual components has no impact on
    functional correctness ("patience"), which is what lets μopt
    passes rewrite the graph freely. *)

module T = Muir_ir.Types
module I = Muir_ir.Instr

type node_id = int
type task_id = int
type struct_id = int

(** Address-space id; space 0 is the global DRAM-backed space, spaces
    [>= 1] correspond to program globals (allocation sites). *)
type space_id = int

(** Scalar function-unit opcodes.  [Fident] is the polymorphic
    pass-through used for wave tokens and fused identities. *)
type fu_op =
  | Fibin of I.ibin
  | Ffbin of I.fbin
  | Ficmp of I.icmp
  | Ffcmp of I.fcmp
  | Ffunary of I.funary
  | Fcast of I.cast
  | Fselect
  | Fgep of int  (** scale; computes base + index*scale *)
  | Fident

type tensor_op = Tmul2 | Tadd2 | Trelu2

(** What a node is.  Arities:
    - [Compute]: wired/imm inputs per opcode, one output.
    - [Fused]: a straight chain of fu_ops applied in one stage group
      (result of the op-fusion pass); inputs feed the first op's
      non-chained operands in order.
    - [Merge k]: 2k inputs — ports [0..k-1] predicates, [k..2k-1]
      values; emits the value whose predicate is true.
    - [MergeLoop]: 3 inputs — [ctl; init; back]; consumes [ctl], then
      consumes and re-emits from the selected data input (false→init,
      true→back).  The ctl back edge must carry one initial [false].
    - [Steer]: 2 inputs — [pred; data]; output port 0 fires when the
      predicate is true, port 1 when false.
    - [Load]: inputs [pred; addr] (+ trailing order tokens), outputs
      [data; done].  [Store]: inputs [pred; addr; value] (+ order),
      output [done].  Tensor variants move whole tiles through the
      databox (§3.4).
    - [Tcompute]: tile inputs, tile output (§6.3 higher-order op).
    - [LiveIn i]: no inputs, emits live-in [i] once per invocation.
    - [LiveOut i]: 1 input, captures live-out [i].
    - [CallChild t]: inputs [pred; args..]; outputs = child live-outs
      (request-response, used for nested loops and calls, §3.5).
    - [SpawnChild t]: inputs [pred; args..]; output 0 = child's return
      value, delivered when the child completes (valid after sync).
    - [SyncWait]: input [trigger]; output [done] once every task
      spawned under this invocation's sync context has completed. *)
type node_kind =
  | Compute of fu_op
  | Fused of fu_op list
  | FusedSteer of fu_op list
      (** a fused chain whose result is steered in the same stage:
          inputs [pred; chain inputs..]; outputs like [Steer].  The
          op-fusion pass uses this to re-time loop rings (the paper's
          Buffer→φ→i++→i==0→branch example collapses this way). *)
  | Merge of int
  | MergeLoop
  | Steer
  | Load of { space : space_id }
  | Store of { space : space_id }
  | Tload of { space : space_id; shape : T.shape }
  | Tstore of { space : space_id; shape : T.shape }
  | Tcompute of { top : tensor_op; dedicated : bool }
      (** [dedicated = false] (baseline) time-multiplexes the tile
          operation over one scalar multiplier and one adder;
          [dedicated = true] is the single-issue reduction-tree unit
          of Fig. 14, installed by the tensor higher-order-ops pass *)
  | LiveIn of int
  | LiveOut of int
  | CallChild of task_id
  | SpawnChild of task_id
  | SyncWait

(** An input port: wired to an edge, or a compile-time immediate. *)
type slot = Swire | Simm of T.value

type node = {
  nid : node_id;
  mutable kind : node_kind;
  mutable ins : slot array;
  mutable nty : T.ty;      (** type of output port 0's tokens *)
  mutable label : string;  (** provenance, for printing and Table 4 *)
}

(** A latency-insensitive channel between two ports.  [Registered]
    edges cost one cycle and one register stage (the baseline for
    every connection); [Comb] edges are intra-stage wires created by
    op fusion. *)
type edge_kind = Registered | Comb

type edge = {
  eid : int;
  mutable src : node_id * int;
  mutable dst : node_id * int;
  mutable ekind : edge_kind;
  mutable capacity : int;      (** token slots; >= 1 for [Registered] *)
  mutable initial : T.value list;  (** initial tokens (loop ctl primes) *)
}

type task_kind = Tfunc | Tloop of { parallel : bool }

type task = {
  tid : task_id;
  tname : string;
  tkind : task_kind;
  mutable nodes : node list;
  mutable edges : edge list;
  mutable next_nid : int;
  mutable next_eid : int;
  arg_tys : T.ty list;  (** live-in tuple; index 0 is the control token *)
  res_tys : T.ty list;  (** live-out tuple; index 0 is the done token *)
  mutable tiles : int;          (** execution tiling factor (μopt pass 2) *)
  mutable queue_depth : int;    (** task queue entries (μopt pass 1) *)
  mutable children : task_id list;
}

(** Hardware memory structures (§3.4).  All sizes in words. *)
type structure =
  | Scratchpad of {
      mutable banks : int;
      mutable ports_per_bank : int;
      mutable latency : int;
      mutable width_words : int;  (** words returned per access *)
      mutable wb_buffer : bool;
          (** stores acknowledge immediately from a write-back buffer
              (the Pass-3 alternative the paper mentions) *)
    }
  | Cache of {
      mutable banks : int;
      mutable line_words : int;
      mutable size_words : int;
      mutable ways : int;
      mutable hit_latency : int;
      mutable miss_latency : int;  (** DRAM round trip *)
    }

type struct_inst = {
  sid : struct_id;
  sname : string;
  mutable shape : structure;
}

type circuit = {
  cname : string;
  mutable tasks : task list;
  root : task_id;
  mutable structures : struct_inst list;
  mutable space_map : (space_id * struct_id) list;
  mutable junction_width : (task_id * int) list;
      (** memory requests grantable per cycle per task tile;
          default 1 when absent (raised by the banking passes) *)
  prog : Muir_ir.Program.t;  (** the behaviour this circuit implements *)
}

(* ------------------------------------------------------------------ *)
(* Constructors and accessors                                          *)

let in_arity (k : node_kind) ~(call_args : int) =
  match k with
  | Compute (Fibin _ | Ffbin _ | Ficmp _ | Ffcmp _ | Fgep _) -> 2
  | Compute (Ffunary _ | Fcast _ | Fident) -> 1
  | Compute Fselect -> 3
  | Fused _ | FusedSteer _ -> -1 (* variable; fixed at creation *)
  | Merge k -> 2 * k
  | MergeLoop -> 3
  | Steer -> 2
  | Load _ -> 2
  | Store _ -> 3
  | Tload _ -> 3 (* pred; addr; row_stride *)
  | Tstore _ -> 4 (* pred; addr; row_stride; value *)
  | Tcompute { top = Tmul2 | Tadd2; _ } -> 2
  | Tcompute { top = Trelu2; _ } -> 1
  | LiveIn _ -> 0
  | LiveOut _ -> 1
  | CallChild _ | SpawnChild _ -> 1 + call_args
  | SyncWait -> 1

let out_arity (k : node_kind) ~(call_res : int) =
  match k with
  | Steer | FusedSteer _ -> 2
  | Load _ -> 2  (* data; done *)
  | Tload _ -> 2
  | Store _ | Tstore _ -> 1 (* done *)
  | LiveOut _ -> 0
  | CallChild _ -> call_res
  | SpawnChild _ -> 1
  | _ -> 1

let new_task ~tid ~tname ~tkind ~arg_tys ~res_tys : task =
  { tid; tname; tkind; nodes = []; edges = []; next_nid = 0; next_eid = 0;
    arg_tys; res_tys; tiles = 1; queue_depth = 2; children = [] }

let add_node (t : task) ?(label = "") ~(ty : T.ty) (kind : node_kind)
    ~(nins : int) : node =
  let n =
    { nid = t.next_nid; kind; ins = Array.make nins Swire; nty = ty; label }
  in
  t.next_nid <- t.next_nid + 1;
  t.nodes <- t.nodes @ [ n ];
  n

let node (t : task) (nid : node_id) : node =
  match List.find_opt (fun n -> n.nid = nid) t.nodes with
  | Some n -> n
  | None -> invalid_arg (Fmt.str "Graph.node: %d not in task %s" nid t.tname)

let connect ?(ekind = Registered) ?(capacity = 2) ?(initial = []) (t : task)
    ~(src : node_id * int) ~(dst : node_id * int) : edge =
  let e =
    { eid = t.next_eid; src; dst; ekind; capacity = max capacity 1; initial }
  in
  t.next_eid <- t.next_eid + 1;
  t.edges <- t.edges @ [ e ];
  e

let set_imm (n : node) (port : int) (v : T.value) = n.ins.(port) <- Simm v

let in_edges (t : task) (nid : node_id) =
  List.filter (fun e -> fst e.dst = nid) t.edges

let out_edges (t : task) (nid : node_id) =
  List.filter (fun e -> fst e.src = nid) t.edges

let task (c : circuit) (tid : task_id) : task =
  match List.find_opt (fun t -> t.tid = tid) c.tasks with
  | Some t -> t
  | None -> invalid_arg (Fmt.str "Graph.task: no task %d" tid)

let find_task (c : circuit) (name : string) : task =
  match List.find_opt (fun t -> t.tname = name) c.tasks with
  | Some t -> t
  | None -> invalid_arg (Fmt.str "Graph.find_task: no task %s" name)

let structure (c : circuit) (sid : struct_id) : struct_inst =
  match List.find_opt (fun s -> s.sid = sid) c.structures with
  | Some s -> s
  | None -> invalid_arg (Fmt.str "Graph.structure: no structure %d" sid)

let structure_of_space (c : circuit) (space : space_id) : struct_inst =
  match List.assoc_opt space c.space_map with
  | Some sid -> structure c sid
  | None -> (
    (* Fall back to the global space's structure. *)
    match List.assoc_opt 0 c.space_map with
    | Some sid -> structure c sid
    | None -> invalid_arg "Graph.structure_of_space: no global structure")

let junction_width (c : circuit) (tid : task_id) =
  match List.assoc_opt tid c.junction_width with Some w -> w | None -> 1

let set_junction_width (c : circuit) (tid : task_id) (w : int) =
  c.junction_width <- (tid, w) :: List.remove_assoc tid c.junction_width

let add_structure (c : circuit) ~(sname : string) (shape : structure) :
    struct_inst =
  let sid =
    1 + List.fold_left (fun m s -> max m s.sid) (-1) c.structures
  in
  let s = { sid; sname; shape } in
  c.structures <- c.structures @ [ s ];
  s

let bind_space (c : circuit) (space : space_id) (sid : struct_id) =
  c.space_map <- (space, sid) :: List.remove_assoc space c.space_map

(** Total node/edge counts across all tasks — the μIR side of the
    Table 4 conciseness comparison. *)
let graph_size (c : circuit) : int * int =
  List.fold_left
    (fun (n, e) t -> (n + List.length t.nodes, e + List.length t.edges))
    (0, 0) c.tasks

(* ------------------------------------------------------------------ *)
(* Queries used by μopt passes                                         *)

let is_memory_node (n : node) =
  match n.kind with
  | Load _ | Store _ | Tload _ | Tstore _ -> true
  | _ -> false

let node_space (n : node) : space_id option =
  match n.kind with
  | Load { space } | Store { space } | Tload { space; _ } | Tstore { space; _ }
    -> Some space
  | _ -> None

let set_node_space (n : node) (space : space_id) =
  match n.kind with
  | Load _ -> n.kind <- Load { space }
  | Store _ -> n.kind <- Store { space }
  | Tload { shape; _ } -> n.kind <- Tload { space; shape }
  | Tstore { shape; _ } -> n.kind <- Tstore { space; shape }
  | _ -> invalid_arg "Graph.set_node_space: not a memory node"

let memory_nodes (t : task) = List.filter is_memory_node t.nodes

let iter_tasks f (c : circuit) = List.iter f c.tasks

(* ------------------------------------------------------------------ *)
(* Node -> structure attribution                                       *)

(** The hardware structure a node's stalls are charged against: the
    memory structure serving its address space, or the invocation
    queue of the child task it calls/spawns.  The mapping is stable
    across μopt passes — a pass that rebinds a space or re-parents a
    call moves the attribution with it — which is what lets a profile
    name the structure whose widening would remove a bottleneck. *)
type struct_ref = Rstruct of struct_id | Rqueue of task_id

let node_structure (c : circuit) (n : node) : struct_ref option =
  match n.kind with
  | Load _ | Store _ | Tload _ | Tstore _ -> (
    match node_space n with
    | Some sp -> Some (Rstruct (structure_of_space c sp).sid)
    | None -> None)
  | CallChild t | SpawnChild t -> Some (Rqueue t)
  | _ -> None

let struct_ref_name (c : circuit) : struct_ref -> string = function
  | Rstruct sid -> (structure c sid).sname
  | Rqueue tid -> "queue:" ^ (task c tid).tname

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let fu_op_to_string = function
  | Fibin op -> I.ibin_to_string op
  | Ffbin op -> I.fbin_to_string op
  | Ficmp op -> "icmp." ^ I.icmp_to_string op
  | Ffcmp op -> "fcmp." ^ I.fcmp_to_string op
  | Ffunary op -> I.funary_to_string op
  | Fcast op -> I.cast_to_string op
  | Fselect -> "select"
  | Fgep s -> Fmt.str "gep*%d" s
  | Fident -> "ident"

let tensor_op_to_string = function
  | Tmul2 -> "tensor.mul"
  | Tadd2 -> "tensor.add"
  | Trelu2 -> "tensor.relu"

let kind_to_string = function
  | Compute op -> fu_op_to_string op
  | Fused ops ->
    Fmt.str "fused{%s}" (String.concat ";" (List.map fu_op_to_string ops))
  | FusedSteer ops ->
    Fmt.str "fused.steer{%s}"
      (String.concat ";" (List.map fu_op_to_string ops))
  | Merge k -> Fmt.str "merge%d" k
  | MergeLoop -> "mu"
  | Steer -> "steer"
  | Load { space } -> Fmt.str "load@%d" space
  | Store { space } -> Fmt.str "store@%d" space
  | Tload { space; _ } -> Fmt.str "tload@%d" space
  | Tstore { space; _ } -> Fmt.str "tstore@%d" space
  | Tcompute { top; dedicated } ->
    Fmt.str "%s%s" (tensor_op_to_string top) (if dedicated then "!" else "")
  | LiveIn i -> Fmt.str "livein%d" i
  | LiveOut i -> Fmt.str "liveout%d" i
  | CallChild t -> Fmt.str "call.task%d" t
  | SpawnChild t -> Fmt.str "spawn.task%d" t
  | SyncWait -> "sync"

let pp_node ppf (n : node) =
  Fmt.pf ppf "n%d %s : %a%s" n.nid (kind_to_string n.kind) T.pp_ty n.nty
    (if n.label = "" then "" else " ; " ^ n.label)

let pp_task ppf (t : task) =
  Fmt.pf ppf "@[<v2>task %d %s (%s, tiles=%d, queue=%d):@," t.tid t.tname
    (match t.tkind with
    | Tfunc -> "func"
    | Tloop { parallel } -> if parallel then "parallel-loop" else "loop")
    t.tiles t.queue_depth;
  List.iter (fun n -> Fmt.pf ppf "%a@," pp_node n) t.nodes;
  List.iter
    (fun e ->
      Fmt.pf ppf "e%d n%d.%d -> n%d.%d%s%s@," e.eid (fst e.src) (snd e.src)
        (fst e.dst) (snd e.dst)
        (match e.ekind with Registered -> "" | Comb -> " comb")
        (if e.initial = [] then ""
         else Fmt.str " init[%a]" Fmt.(list ~sep:comma T.pp_value) e.initial))
    t.edges;
  Fmt.pf ppf "@]"

let pp_structure ppf (s : struct_inst) =
  match s.shape with
  | Scratchpad { banks; ports_per_bank; latency; width_words; wb_buffer } ->
    Fmt.pf ppf "scratchpad %s banks=%d ports=%d lat=%d width=%d%s" s.sname
      banks ports_per_bank latency width_words
      (if wb_buffer then " wb" else "")
  | Cache { banks; line_words; size_words; ways; hit_latency; miss_latency }
    ->
    Fmt.pf ppf "cache %s banks=%d line=%d size=%d ways=%d hit=%d miss=%d"
      s.sname banks line_words size_words ways hit_latency miss_latency

let pp_circuit ppf (c : circuit) =
  Fmt.pf ppf "@[<v>circuit %s (root task %d)@," c.cname c.root;
  List.iter (fun s -> Fmt.pf ppf "%a@," pp_structure s) c.structures;
  List.iter
    (fun (sp, sid) -> Fmt.pf ppf "space %d -> structure %d@," sp sid)
    c.space_map;
  List.iter (fun t -> Fmt.pf ppf "%a@," pp_task t) c.tasks;
  Fmt.pf ppf "@]"
