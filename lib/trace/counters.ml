(** Always-on, hardware-style performance counters.

    The μIR paper reads every evaluation number out of per-structure
    hardware counters in the generated RTL — queue occupancies, memory
    stalls, tile utilization — not out of an instruction trace.  This
    module is the software analogue: a bank of exact counters the
    kernel maintains unconditionally, O(1) per event, independent of
    the opt-in event ring in {!Trace} (whose fixed capacity silently
    sheds history on long runs).  The ring remains the source for
    timelines (Chrome trace, VCD, critical path); the counter bank is
    the source for every aggregate number: profiles, run reports, the
    bench regression gate and the DSE greedy strategy.

    {2 The stall taxonomy}

    Every node's lifetime is partitioned into intervals, each labelled
    with exactly one cause.  The kernel transitions a node's label at
    the only points its state can change — a successful firing, a
    failed (woken) fire attempt, invocation drain — so the labels
    partition the node's lifetime {e exactly}:

      busy + Σ stall-cause cycles = lifetime cycles

    for every node, enforced over all workloads by
    [test/test_counters.ml] (and cross-checked against the traced
    taxonomy in [test/test_trace.ml]).

    - [Busy]: the node fired this cycle.
    - [Operand]: at least one wired input channel is empty.
    - [Backpressure]: inputs ready but the output side is full (the
      node's pipeline register file cannot accept another result
      because downstream has not drained).
    - [Memory]: a memory node blocked on its outstanding-request
      window, i.e. waiting on bank queues, conflicts or misses.
    - [Structural]: a non-memory hardware hazard — the function unit's
      initiation interval, or a call/spawn facing a full child task
      queue.
    - [Sync]: a sync node parked until spawned children complete.
    - [Idle]: no invocation in flight; the node has no work. *)

type cause =
  | Busy
  | Operand
  | Backpressure
  | Memory
  | Structural
  | Sync
  | Idle

let ncauses = 7

let cause_index = function
  | Busy -> 0
  | Operand -> 1
  | Backpressure -> 2
  | Memory -> 3
  | Structural -> 4
  | Sync -> 5
  | Idle -> 6

let cause_of_index = [| Busy; Operand; Backpressure; Memory; Structural;
                        Sync; Idle |]

let cause_name = function
  | Busy -> "busy"
  | Operand -> "operand-wait"
  | Backpressure -> "backpressure"
  | Memory -> "memory-outstanding"
  | Structural -> "structural-hazard"
  | Sync -> "sync-wait"
  | Idle -> "idle"

(** What an occupancy counter measures: a task's invocation queue or
    the total queued sub-requests across a memory structure's banks. *)
type key = Ktask of int | Kstruct of int

(* ------------------------------------------------------------------ *)
(* Per-instance interval accounting                                     *)

module Prof = struct
  (** One node's running attribution: the current cause label, the
      cycle it was entered, and the per-cause accumulators. *)
  type nprof = {
    mutable st : int;      (** current cause (a [cause_index]) *)
    mutable since : int;   (** cycle the current label started *)
    acc : int array;       (** cycles per cause, [ncauses] wide *)
  }

  (** The per-instance profile: one [nprof] per node, indexed by the
      node's drain-order index.  [born] is mutable so the simulator
      can pool retired dynamic instances and rebirth their profiles in
      place instead of reallocating the accumulator arrays. *)
  type iprof = { mutable born : int; nprofs : nprof array }

  let make ~(born : int) ~(nnodes : int) : iprof =
    { born;
      nprofs =
        Array.init nnodes (fun _ ->
            { st = cause_index Idle; since = born;
              acc = Array.make ncauses 0 }) }

  (** Rebirth a pooled profile at cycle [born]: all accumulators to
      zero, every node back to [Idle].  Allocation-free. *)
  let reset (ip : iprof) ~(born : int) : unit =
    ip.born <- born;
    let idle = cause_index Idle in
    for i = 0 to Array.length ip.nprofs - 1 do
      let np = ip.nprofs.(i) in
      np.st <- idle;
      np.since <- born;
      Array.fill np.acc 0 ncauses 0
    done

  (** Close the current interval at [now] and relabel; true if the
      label actually changed (callers use this to avoid flooding the
      event ring with repeated stall events). *)
  let transition (np : nprof) (st : int) (now : int) : bool =
    if now > np.since then begin
      np.acc.(np.st) <- np.acc.(np.st) + (now - np.since);
      np.since <- now
    end;
    if np.st = st then false
    else begin
      np.st <- st;
      true
    end
end

(* ------------------------------------------------------------------ *)
(* The counter bank                                                     *)

(** Whole-run counters for one static (task, node) pair, across every
    instance/tile/context that instantiated it. *)
type node_ctr = {
  mutable n_fires : int;
  mutable n_span : int;   (** Σ instance lifetimes, in cycles *)
  n_acc : int array;      (** cycles per cause; Σ = [n_span] *)
}

(** Occupancy integral for one queue or memory structure: sampled
    every cycle, so [o_sum / o_cycles] is the exact time-average depth
    and [o_max] the high-water mark — no histogram, no ring, O(1)
    state per structure. *)
type occ_ctr = {
  mutable o_cycles : int;  (** cycles sampled *)
  mutable o_sum : int;     (** Σ depth over those cycles *)
  mutable o_max : int;     (** high-water mark *)
}

type t = {
  nodes : (int * int, node_ctr) Hashtbl.t;   (** (task, node) counters *)
  occ : (key, occ_ctr) Hashtbl.t;
  mutable spawns : int;    (** task invocations enqueued *)
  mutable syncs : int;     (** sync joins completed *)
  mutable final_cycle : int;
}

let create () : t =
  { nodes = Hashtbl.create 128; occ = Hashtbl.create 16;
    spawns = 0; syncs = 0; final_cycle = 0 }

let node_ctr (c : t) ~(task : int) ~(node : int) : node_ctr =
  match Hashtbl.find_opt c.nodes (task, node) with
  | Some g -> g
  | None ->
    let g = { n_fires = 0; n_span = 0; n_acc = Array.make ncauses 0 } in
    Hashtbl.add c.nodes (task, node) g;
    g

(** Fold a finished instance's accounting into the whole-run counters.
    [upto] is one past the last cycle the instance existed; closing
    each node's open interval there is what makes the conservation
    invariant exact. *)
let fold (c : t) ~(task : int) ~(node : int) ~(fires : int) ~(born : int)
    ~(upto : int) (np : Prof.nprof) : unit =
  ignore (Prof.transition np np.st upto);
  let g = node_ctr c ~task ~node in
  g.n_fires <- g.n_fires + fires;
  g.n_span <- g.n_span + (upto - born);
  Array.iteri (fun i v -> g.n_acc.(i) <- g.n_acc.(i) + v) np.acc

(** {!fold} against a counter the caller already resolved with
    {!node_ctr} — no hashed (task, node) key on the retirement path. *)
let fold_into (g : node_ctr) ~(fires : int) ~(born : int) ~(upto : int)
    (np : Prof.nprof) : unit =
  ignore (Prof.transition np np.st upto);
  g.n_fires <- g.n_fires + fires;
  g.n_span <- g.n_span + (upto - born);
  for i = 0 to ncauses - 1 do
    g.n_acc.(i) <- g.n_acc.(i) + np.acc.(i)
  done

(** Accumulate one cycle's occupancy sample into [key]'s integral. *)
let occ_add (c : t) (key : key) (depth : int) : unit =
  match Hashtbl.find_opt c.occ key with
  | Some o ->
    o.o_cycles <- o.o_cycles + 1;
    o.o_sum <- o.o_sum + depth;
    if depth > o.o_max then o.o_max <- depth
  | None ->
    Hashtbl.add c.occ key
      { o_cycles = 1; o_sum = depth; o_max = depth }

(** The occupancy integral for [key], created empty on first use.  The
    kernel resolves each queue's counter once and then ticks it with
    {!occ_tick} — no variant-key allocation per cycle. *)
let occ_ref (c : t) (key : key) : occ_ctr =
  match Hashtbl.find_opt c.occ key with
  | Some o -> o
  | None ->
    let o = { o_cycles = 0; o_sum = 0; o_max = 0 } in
    Hashtbl.add c.occ key o;
    o

let occ_tick (o : occ_ctr) (depth : int) : unit =
  o.o_cycles <- o.o_cycles + 1;
  o.o_sum <- o.o_sum + depth;
  if depth > o.o_max then o.o_max <- depth

(* ------------------------------------------------------------------ *)
(* Reading the bank                                                     *)

let iter_nodes (f : task:int -> node:int -> node_ctr -> unit) (c : t) : unit =
  Hashtbl.iter (fun (task, node) g -> f ~task ~node g) c.nodes

let find_node (c : t) ~(task : int) ~(node : int) : node_ctr option =
  Hashtbl.find_opt c.nodes (task, node)

let total_fires (c : t) : int =
  Hashtbl.fold (fun _ g acc -> acc + g.n_fires) c.nodes 0

(** Σ stall cycles for [cause] across the whole bank. *)
let total_cause (c : t) (cause : cause) : int =
  let i = cause_index cause in
  Hashtbl.fold (fun _ g acc -> acc + g.n_acc.(i)) c.nodes 0

let occ_keys (c : t) : key list =
  Hashtbl.fold (fun k _ acc -> k :: acc) c.occ []
  |> List.sort compare

let find_occ (c : t) (key : key) : occ_ctr option =
  Hashtbl.find_opt c.occ key

let occ_mean (o : occ_ctr) : float =
  if o.o_cycles = 0 then 0.0
  else float_of_int o.o_sum /. float_of_int o.o_cycles
