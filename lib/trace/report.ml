(** Versioned, machine-readable run reports.

    A {!run} captures everything one simulation produced — workload,
    μopt stack, config knobs, cycle counts, the always-on {!Counters}
    bank, per-structure stall attribution and (optionally) the
    FPGA/ASIC model outputs — in a stable JSON schema.  `muirc profile
    --json` emits one run; `bench/main.exe --json` emits a {!suite} of
    them, which is what the committed `bench/baseline.json` and the CI
    regression gate consume.

    {2 Determinism}

    Reports carry a {!provenance} block (schema version, `GIT_REV`
    from the environment with fallback "unknown", and the dune build
    profile) and {e no wall-clock timestamps}; wall seconds are an
    explicitly optional field the deterministic emitters leave null.
    Two runs of the same binary on the same input therefore produce
    byte-identical report files — which is what lets `lib/dse` treat a
    report as cache-key-addressable content and lets the regression
    gate diff baselines meaningfully.

    {2 Diff and compare semantics}

    [diff] renders the per-structure stall-cycle deltas between two
    runs (negative = the new run stalls less), headed by the total
    cycle delta.  [compare] matches two suites' runs by
    (workload, stack) and flags a regression when
    [new > base * (1 + tolerance/100)]; runs present on only one side
    are reported but never fail the gate. *)

module G = Muir_core.Graph

let schema_version = 1

type provenance = {
  pv_schema : int;
  pv_git_rev : string;   (** $GIT_REV, or "unknown" *)
  pv_profile : string;   (** dune build profile *)
}

let provenance () : provenance =
  { pv_schema = schema_version;
    pv_git_rev = Option.value ~default:"unknown" (Sys.getenv_opt "GIT_REV");
    pv_profile = Buildinfo.dune_profile }

(** One memory structure's counter row. *)
type mem_row = {
  m_name : string;
  m_accesses : int;
  m_hits : int;
  m_misses : int;
  m_conflicts : int;
}

type fpga = {
  f_mhz : float;
  f_alms : int;
  f_regs : int;
  f_dsps : int;
  f_brams : int;
}

type asic = {
  a_ghz : float;
  a_area : float;  (** 10^3 µm² at 28 nm *)
}

(** One node's whole-run counters, with causes by name so the schema
    survives taxonomy reordering. *)
type node_row = {
  nd_task : string;
  nd_node : int;
  nd_kind : string;
  nd_fires : int;
  nd_span : int;
  nd_causes : (string * int) list;  (** cause name -> cycles *)
}

type occ_row = {
  oc_key : string;     (** "queue:<task>" or the structure name *)
  oc_cycles : int;
  oc_sum : int;
  oc_max : int;
}

type run = {
  r_workload : string;
  r_stack : string;
  r_knobs : (string * int) list;  (** e.g. tiles/banks *)
  r_cycles : int;                 (** total (sim + DMA) *)
  r_sim_cycles : int;
  r_fires : int;
  r_spawns : int;
  r_syncs : int;
  r_wall : float option;          (** None in deterministic reports *)
  r_nodes : node_row list;
  r_occ : occ_row list;
  r_mem : mem_row list;
  r_structs : (string * int) list;
      (** structure / queue -> attributed stall cycles *)
  r_fpga : fpga option;
  r_asic : asic option;
}

type suite = { su_provenance : provenance; su_runs : run list }

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)

let key_name (c : G.circuit) : Counters.key -> string = function
  | Counters.Ktask tid -> "queue:" ^ (G.task c tid).tname
  | Counters.Kstruct sid -> (G.structure c sid).sname

(** Build a run record from a finished simulation's counter bank.
    [mem] comes from [Sim.stats.mem] (converted by the caller — this
    library does not depend on the simulator). *)
let make ~(workload : string) ~(stack : string) ?(knobs = []) ?wall
    ?(mem = []) ?fpga ?asic ~(total_cycles : int) (c : G.circuit)
    (ctrs : Counters.t) : run =
  let p = Profile.of_run c ctrs in
  let nodes =
    List.map
      (fun (r : Profile.row) ->
        { nd_task = r.r_tname; nd_node = r.r_node; nd_kind = r.r_kind;
          nd_fires = r.r_fires; nd_span = r.r_span;
          nd_causes =
            List.filter_map
              (fun i ->
                let v = r.r_acc.(i) in
                if v = 0 then None
                else Some (Counters.cause_name Counters.cause_of_index.(i), v))
              (List.init Counters.ncauses Fun.id) })
      p.Profile.p_rows
  in
  let occ =
    List.map
      (fun k ->
        let o = Option.get (Counters.find_occ ctrs k) in
        { oc_key = key_name c k; oc_cycles = o.Counters.o_cycles;
          oc_sum = o.Counters.o_sum; oc_max = o.Counters.o_max })
      (Counters.occ_keys ctrs)
  in
  { r_workload = workload; r_stack = stack; r_knobs = knobs;
    r_cycles = total_cycles; r_sim_cycles = ctrs.Counters.final_cycle;
    r_fires = p.Profile.p_fires; r_spawns = ctrs.Counters.spawns;
    r_syncs = ctrs.Counters.syncs; r_wall = wall; r_nodes = nodes;
    r_occ = occ; r_mem = mem;
    r_structs =
      List.map
        (fun (s : Profile.struct_row) -> (s.s_name, s.s_stalls))
        p.Profile.p_structs;
    r_fpga = fpga; r_asic = asic }

(* ------------------------------------------------------------------ *)
(* JSON emission                                                        *)

let provenance_json (pv : provenance) : Json.t =
  Json.Obj
    [ ("schema", Json.Int pv.pv_schema);
      ("git_rev", Json.Str pv.pv_git_rev);
      ("dune_profile", Json.Str pv.pv_profile) ]

let run_json (r : run) : Json.t =
  Json.Obj
    [ ("workload", Json.Str r.r_workload);
      ("stack", Json.Str r.r_stack);
      ("knobs", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.r_knobs));
      ("cycles", Json.Int r.r_cycles);
      ("sim_cycles", Json.Int r.r_sim_cycles);
      ("fires", Json.Int r.r_fires);
      ("spawns", Json.Int r.r_spawns);
      ("syncs", Json.Int r.r_syncs);
      ( "wall_seconds",
        match r.r_wall with None -> Json.Null | Some w -> Json.Float w );
      ( "counters",
        Json.Obj
          [ ( "nodes",
              Json.Arr
                (List.map
                   (fun n ->
                     Json.Obj
                       [ ("task", Json.Str n.nd_task);
                         ("node", Json.Int n.nd_node);
                         ("kind", Json.Str n.nd_kind);
                         ("fires", Json.Int n.nd_fires);
                         ("span", Json.Int n.nd_span);
                         ( "causes",
                           Json.Obj
                             (List.map
                                (fun (c, v) -> (c, Json.Int v))
                                n.nd_causes) ) ])
                   r.r_nodes) );
            ( "occupancy",
              Json.Arr
                (List.map
                   (fun o ->
                     Json.Obj
                       [ ("key", Json.Str o.oc_key);
                         ("cycles", Json.Int o.oc_cycles);
                         ("sum", Json.Int o.oc_sum);
                         ("max", Json.Int o.oc_max) ])
                   r.r_occ) );
            ( "mem",
              Json.Arr
                (List.map
                   (fun m ->
                     Json.Obj
                       [ ("name", Json.Str m.m_name);
                         ("accesses", Json.Int m.m_accesses);
                         ("hits", Json.Int m.m_hits);
                         ("misses", Json.Int m.m_misses);
                         ("conflicts", Json.Int m.m_conflicts) ])
                   r.r_mem) ) ] );
      ( "structs",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.r_structs) );
      ( "fpga",
        match r.r_fpga with
        | None -> Json.Null
        | Some f ->
          Json.Obj
            [ ("mhz", Json.Float f.f_mhz); ("alms", Json.Int f.f_alms);
              ("regs", Json.Int f.f_regs); ("dsps", Json.Int f.f_dsps);
              ("brams", Json.Int f.f_brams) ] );
      ( "asic",
        match r.r_asic with
        | None -> Json.Null
        | Some a ->
          Json.Obj
            [ ("ghz", Json.Float a.a_ghz); ("kum2", Json.Float a.a_area) ] ) ]

(** A single run report, wrapped with its provenance. *)
let to_json (r : run) : string =
  Json.to_string
    (Json.Obj
       [ ("provenance", provenance_json (provenance ()));
         ("run", run_json r) ])

let suite_to_json (s : suite) : string =
  Json.to_string
    (Json.Obj
       [ ("provenance", provenance_json s.su_provenance);
         ("runs", Json.Arr (List.map run_json s.su_runs)) ])

(* ------------------------------------------------------------------ *)
(* Reading reports back                                                 *)

exception Bad_report of string

let prov_of_json (j : Json.t) : provenance =
  { pv_schema = Json.to_int_exn (Json.get "schema" j);
    pv_git_rev = Json.to_str_exn (Json.get "git_rev" j);
    pv_profile = Json.to_str_exn (Json.get "dune_profile" j) }

let int_assoc (j : Json.t) : (string * int) list =
  match j with
  | Json.Obj kvs -> List.map (fun (k, v) -> (k, Json.to_int_exn v)) kvs
  | _ -> []

let run_of_json (j : Json.t) : run =
  let str k = Json.to_str_exn (Json.get k j) in
  let int k = Json.to_int_exn (Json.get k j) in
  let opt_int k = Option.value ~default:0 (Option.map Json.to_int_exn (Json.member k j)) in
  let ctrs = Option.value ~default:(Json.Obj []) (Json.member "counters" j) in
  let nodes =
    List.map
      (fun n ->
        { nd_task = Json.to_str_exn (Json.get "task" n);
          nd_node = Json.to_int_exn (Json.get "node" n);
          nd_kind = Json.to_str_exn (Json.get "kind" n);
          nd_fires = Json.to_int_exn (Json.get "fires" n);
          nd_span = Json.to_int_exn (Json.get "span" n);
          nd_causes =
            int_assoc (Option.value ~default:(Json.Obj []) (Json.member "causes" n)) })
      (Json.to_list (Option.value ~default:(Json.Arr []) (Json.member "nodes" ctrs)))
  in
  let occ =
    List.map
      (fun o ->
        { oc_key = Json.to_str_exn (Json.get "key" o);
          oc_cycles = Json.to_int_exn (Json.get "cycles" o);
          oc_sum = Json.to_int_exn (Json.get "sum" o);
          oc_max = Json.to_int_exn (Json.get "max" o) })
      (Json.to_list
         (Option.value ~default:(Json.Arr []) (Json.member "occupancy" ctrs)))
  in
  let mem =
    List.map
      (fun m ->
        { m_name = Json.to_str_exn (Json.get "name" m);
          m_accesses = Json.to_int_exn (Json.get "accesses" m);
          m_hits = Json.to_int_exn (Json.get "hits" m);
          m_misses = Json.to_int_exn (Json.get "misses" m);
          m_conflicts = Json.to_int_exn (Json.get "conflicts" m) })
      (Json.to_list (Option.value ~default:(Json.Arr []) (Json.member "mem" ctrs)))
  in
  { r_workload = str "workload"; r_stack = str "stack";
    r_knobs =
      int_assoc (Option.value ~default:(Json.Obj []) (Json.member "knobs" j));
    r_cycles = int "cycles"; r_sim_cycles = opt_int "sim_cycles";
    r_fires = opt_int "fires"; r_spawns = opt_int "spawns";
    r_syncs = opt_int "syncs";
    r_wall =
      (match Json.member "wall_seconds" j with
      | Some (Json.Float w) -> Some w
      | Some (Json.Int w) -> Some (float_of_int w)
      | _ -> None);
    r_nodes = nodes; r_occ = occ; r_mem = mem;
    r_structs =
      int_assoc (Option.value ~default:(Json.Obj []) (Json.member "structs" j));
    r_fpga =
      (match Json.member "fpga" j with
      | Some (Json.Obj _ as f) ->
        Some
          { f_mhz = Json.to_float_exn (Json.get "mhz" f);
            f_alms = Json.to_int_exn (Json.get "alms" f);
            f_regs = Json.to_int_exn (Json.get "regs" f);
            f_dsps = Json.to_int_exn (Json.get "dsps" f);
            f_brams = Json.to_int_exn (Json.get "brams" f) }
      | _ -> None);
    r_asic =
      (match Json.member "asic" j with
      | Some (Json.Obj _ as a) ->
        Some
          { a_ghz = Json.to_float_exn (Json.get "ghz" a);
            a_area = Json.to_float_exn (Json.get "kum2" a) }
      | _ -> None) }

(** Parse a report file's contents: either a suite ({"runs": [...]})
    or a single wrapped run ({"run": {...}}). *)
let parse (s : string) : suite =
  let j =
    try Json.parse s
    with Json.Parse_error e -> raise (Bad_report ("invalid JSON: " ^ e))
  in
  try
    let pv =
      match Json.member "provenance" j with
      | Some p -> prov_of_json p
      | None ->
        { pv_schema = schema_version; pv_git_rev = "unknown";
          pv_profile = "unknown" }
    in
    if pv.pv_schema > schema_version then
      raise
        (Bad_report
           (Fmt.str "report schema %d is newer than supported %d"
              pv.pv_schema schema_version));
    let runs =
      match Json.member "runs" j with
      | Some rs -> List.map run_of_json (Json.to_list rs)
      | None -> (
        match Json.member "run" j with
        | Some r -> [ run_of_json r ]
        | None -> raise (Bad_report "neither \"runs\" nor \"run\" present"))
    in
    { su_provenance = pv; su_runs = runs }
  with Json.Parse_error e -> raise (Bad_report ("malformed report: " ^ e))

let load (path : string) : suite =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse s

(* ------------------------------------------------------------------ *)
(* Diff                                                                 *)

(** Per-structure cycle-delta view between two runs: total cycles
    first, then each structure's attributed stall cycles (negative =
    the new run is better). *)
let pp_diff ppf (a : run) (b : run) : unit =
  let pm d = if d > 0 then Fmt.str "+%d" d else string_of_int d in
  Fmt.pf ppf "diff %s [%s] -> %s [%s]@." a.r_workload a.r_stack b.r_workload
    b.r_stack;
  Fmt.pf ppf "  total cycles   %8d -> %8d   (%s)@." a.r_cycles b.r_cycles
    (pm (b.r_cycles - a.r_cycles));
  Fmt.pf ppf "  fires          %8d -> %8d   (%s)@." a.r_fires b.r_fires
    (pm (b.r_fires - a.r_fires));
  let names =
    List.sort_uniq compare (List.map fst a.r_structs @ List.map fst b.r_structs)
  in
  if names = [] then Fmt.pf ppf "  (no structure-attributed stalls)@."
  else begin
    Fmt.pf ppf "  stall cycles by structure:@.";
    List.iter
      (fun name ->
        let va = Option.value ~default:0 (List.assoc_opt name a.r_structs) in
        let vb = Option.value ~default:0 (List.assoc_opt name b.r_structs) in
        if va <> 0 || vb <> 0 then
          Fmt.pf ppf "    %-18s %8d -> %8d   (%s)@." name va vb (pm (vb - va)))
      names
  end

(* ------------------------------------------------------------------ *)
(* Compare (the regression gate)                                        *)

type verdict = {
  v_workload : string;
  v_stack : string;
  v_base : int;
  v_new : int;
  v_delta_pct : float;
  v_regressed : bool;
}

type comparison = {
  cmp_verdicts : verdict list;
  cmp_only_base : (string * string) list;  (** runs missing from new *)
  cmp_only_new : (string * string) list;   (** runs missing from base *)
}

let any_regression (c : comparison) : bool =
  List.exists (fun v -> v.v_regressed) c.cmp_verdicts

(** Match runs by (workload, stack); a run regresses when its new
    cycle count exceeds base * (1 + tolerance/100). *)
let compare_suites ~(tolerance : float) (base : suite) (next : suite) :
    comparison =
  let key (r : run) = (r.r_workload, r.r_stack) in
  let find s r = List.find_opt (fun r' -> key r' = key r) s.su_runs in
  let verdicts =
    List.filter_map
      (fun rb ->
        match find next rb with
        | None -> None
        | Some rn ->
          let limit =
            float_of_int rb.r_cycles *. (1.0 +. (tolerance /. 100.0))
          in
          let delta =
            if rb.r_cycles = 0 then 0.0
            else
              100.0
              *. float_of_int (rn.r_cycles - rb.r_cycles)
              /. float_of_int rb.r_cycles
          in
          Some
            { v_workload = rb.r_workload; v_stack = rb.r_stack;
              v_base = rb.r_cycles; v_new = rn.r_cycles;
              v_delta_pct = delta;
              v_regressed = float_of_int rn.r_cycles > limit })
      base.su_runs
  in
  { cmp_verdicts = verdicts;
    cmp_only_base =
      List.filter_map
        (fun rb -> if find next rb = None then Some (key rb) else None)
        base.su_runs;
    cmp_only_new =
      List.filter_map
        (fun rn -> if find base rn = None then Some (key rn) else None)
        next.su_runs }

let pp_comparison ~(tolerance : float) ppf (c : comparison) : unit =
  Fmt.pf ppf "comparing %d run(s) at %.1f%% tolerance@."
    (List.length c.cmp_verdicts) tolerance;
  List.iter
    (fun v ->
      Fmt.pf ppf "  %-12s %-14s %8d -> %8d  %+6.2f%%  %s@." v.v_workload
        v.v_stack v.v_base v.v_new v.v_delta_pct
        (if v.v_regressed then "REGRESSED" else "ok"))
    c.cmp_verdicts;
  List.iter
    (fun (w, s) -> Fmt.pf ppf "  %-12s %-14s only in baseline@." w s)
    c.cmp_only_base;
  List.iter
    (fun (w, s) -> Fmt.pf ppf "  %-12s %-14s new (no baseline)@." w s)
    c.cmp_only_new;
  if any_regression c then
    Fmt.pf ppf "result: REGRESSION (%d of %d runs over tolerance)@."
      (List.length (List.filter (fun v -> v.v_regressed) c.cmp_verdicts))
      (List.length c.cmp_verdicts)
  else Fmt.pf ppf "result: ok@."
