(** Trace exporters: Chrome trace-event JSON (load in Perfetto or
    [chrome://tracing]) and VCD (any waveform viewer).  Both render
    the ring's retained window; 1 cycle = 1 µs in Chrome, 1 ns in VCD. *)

module G = Muir_core.Graph
module Tr = Trace

(* RFC 8259 string escaping lives in {!Json}; hostile node/structure
   names (quotes, backslashes, control characters) are covered by the
   strict-parser round-trip test in [test/test_trace.ml]. *)
let json_escape = Json.escape

let node_name (c : G.circuit) (tid : int) (nid : int) : string =
  match
    List.find_opt
      (fun (n : G.node) -> n.nid = nid)
      (G.task c tid).nodes
  with
  | Some n ->
    if n.label = "" then Fmt.str "n%d %s" nid (G.kind_to_string n.kind)
    else Fmt.str "n%d %s [%s]" nid (G.kind_to_string n.kind) n.label
  | None -> Fmt.str "n%d" nid

(** Chrome trace-event JSON.  One process per task (pid = task id,
    named via metadata events), one thread per node; firings are "X"
    complete events spanning the node latency, stall transitions are
    "i" instants, occupancy samples are "C" counter series under a
    dedicated counters process. *)
let chrome (c : G.circuit) (tr : Tr.t) : string =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let obj fields =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Fmt.str "\"%s\":%s" k v))
      fields;
    Buffer.add_char buf '}'
  in
  let str s = Fmt.str "\"%s\"" (json_escape s) in
  let counters_pid = 1_000_000 in
  (* metadata: name the processes and threads *)
  List.iter
    (fun (t : G.task) ->
      obj
        [ ("ph", str "M"); ("name", str "process_name");
          ("pid", string_of_int t.tid); ("tid", "0");
          ("args", Fmt.str "{\"name\":%s}" (str ("task " ^ t.tname))) ];
      List.iter
        (fun (n : G.node) ->
          obj
            [ ("ph", str "M"); ("name", str "thread_name");
              ("pid", string_of_int t.tid); ("tid", string_of_int n.nid);
              ("args",
               Fmt.str "{\"name\":%s}" (str (node_name c t.tid n.nid))) ])
        t.nodes)
    c.tasks;
  obj
    [ ("ph", str "M"); ("name", str "process_name");
      ("pid", string_of_int counters_pid); ("tid", "0");
      ("args", Fmt.str "{\"name\":%s}" (str "occupancy")) ];
  let key_name = function
    | Tr.Ktask tid -> "queue:" ^ (G.task c tid).tname
    | Tr.Kstruct sid -> (G.structure c sid).sname
  in
  List.iter
    (fun ev ->
      match ev with
      | Tr.Efire { c = cyc; task; inst; node; lat } ->
        obj
          [ ("ph", str "X"); ("name", str (node_name c task node));
            ("cat", str "fire"); ("pid", string_of_int task);
            ("tid", string_of_int node); ("ts", string_of_int cyc);
            ("dur", string_of_int (max lat 1));
            ("args", Fmt.str "{\"inst\":%d}" inst) ]
      | Tr.Estall { c = cyc; task; inst; node; cause } ->
        obj
          [ ("ph", str "i"); ("name", str (Tr.cause_name cause));
            ("cat", str "stall"); ("s", str "t");
            ("pid", string_of_int task); ("tid", string_of_int node);
            ("ts", string_of_int cyc);
            ("args", Fmt.str "{\"inst\":%d}" inst) ]
      | Tr.Eocc { c = cyc; key; depth } ->
        obj
          [ ("ph", str "C"); ("name", str (key_name key));
            ("pid", string_of_int counters_pid); ("ts", string_of_int cyc);
            ("args", Fmt.str "{\"depth\":%d}" depth) ])
    (Tr.events tr);
  Buffer.add_string buf
    (Fmt.str "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"circuit\":%s,\"cycles\":%d}}"
       (str c.cname) tr.final_cycle);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* VCD                                                                  *)

(** Printable VCD identifier for wire [i]: base-94 over '!'..'~'. *)
let vcd_id (i : int) : string =
  let rec go i acc =
    let acc = String.make 1 (Char.chr (33 + (i mod 94))) ^ acc in
    if i < 94 then acc else go ((i / 94) - 1) acc
  in
  go i ""

let sanitize (s : string) : string =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    s

let binary_of_int (v : int) : string =
  if v = 0 then "0"
  else begin
    let rec go v acc = if v = 0 then acc else go (v / 2) (string_of_int (v mod 2) ^ acc) in
    go v ""
  end

(** VCD dump of the retained window: a 1-bit fire pulse per node
    (grouped in one scope per task) and a 16-bit occupancy bus per
    task queue / memory structure.  Fire wires auto-clear the cycle
    after they pulse. *)
let vcd (c : G.circuit) (tr : Tr.t) : string =
  let buf = Buffer.create 65536 in
  let p fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  p "$date 0 $end";
  p "$version muir trace $end";
  p "$timescale 1ns $end";
  (* wire ids *)
  let next = ref 0 in
  let fresh () =
    let id = vcd_id !next in
    incr next;
    id
  in
  let fire_ids = Hashtbl.create 64 in
  p "$scope module %s $end" (sanitize c.cname);
  List.iter
    (fun (t : G.task) ->
      p "$scope module %s $end" (sanitize t.tname);
      List.iter
        (fun (n : G.node) ->
          let id = fresh () in
          Hashtbl.replace fire_ids (t.tid, n.nid) id;
          p "$var wire 1 %s n%d_%s $end" id n.nid
            (sanitize (G.kind_to_string n.kind)))
        t.nodes;
      p "$upscope $end")
    c.tasks;
  let occ_ids = Hashtbl.create 8 in
  let occ_keys = Tr.occupancy_keys tr in
  if occ_keys <> [] then begin
    p "$scope module occupancy $end";
    List.iter
      (fun key ->
        let id = fresh () in
        Hashtbl.replace occ_ids key id;
        let name =
          match key with
          | Tr.Ktask tid -> "queue_" ^ sanitize (G.task c tid).tname
          | Tr.Kstruct sid -> sanitize (G.structure c sid).sname
        in
        p "$var wire 16 %s %s $end" id name)
      occ_keys;
    p "$upscope $end"
  end;
  p "$upscope $end";
  p "$enddefinitions $end";
  (* initial values *)
  p "#0";
  Hashtbl.iter (fun _ id -> p "0%s" id) fire_ids;
  Hashtbl.iter (fun _ id -> p "b0 %s" id) occ_ids;
  (* dump: group events by cycle, clearing fire pulses one ns later *)
  let cur = ref (-1) in
  let hot = ref [] in
  let open_cycle cyc =
    if cyc <> !cur then begin
      (* clear last cycle's pulses at cur+1 (never later than cyc) *)
      if !hot <> [] then begin
        p "#%d" (!cur + 1);
        List.iter (fun id -> p "0%s" id) !hot;
        hot := []
      end;
      p "#%d" cyc;
      cur := cyc
    end
  in
  List.iter
    (fun ev ->
      match ev with
      | Tr.Efire { c = cyc; task; node; _ } -> (
        open_cycle cyc;
        match Hashtbl.find_opt fire_ids (task, node) with
        | Some id ->
          p "1%s" id;
          if not (List.mem id !hot) then hot := id :: !hot
        | None -> ())
      | Tr.Eocc { c = cyc; key; depth } -> (
        open_cycle cyc;
        match Hashtbl.find_opt occ_ids key with
        | Some id -> p "b%s %s" (binary_of_int depth) id
        | None -> ())
      | Tr.Estall _ -> ())
    (Tr.events tr);
  if !hot <> [] then begin
    p "#%d" (!cur + 1);
    List.iter (fun id -> p "0%s" id) !hot
  end;
  p "#%d" (max tr.final_cycle (!cur + 2));
  Buffer.contents buf
