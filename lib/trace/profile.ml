(** The bottleneck profiler: turns the always-on {!Counters} bank —
    plus, optionally, a {!Trace.t} event ring — into per-node stall
    attribution, per-structure rollups, a critical path over the
    fire-event DAG, and a human-readable report — the instrument the
    paper's §7 loop uses to decide {e which} μopt pass to apply next.

    Attribution is exact (it comes from the whole-run counter bank,
    not the ring), so a profile needs no tracer at all; the critical
    path and occupancy histograms come from the ring's retained
    window when one is supplied, so on very long runs they describe
    the tail of the run. *)

module G = Muir_core.Graph
module Dot = Muir_core.Dot
module Tr = Trace

(** One static (task, node) pair, aggregated over every instance. *)
type row = {
  r_task : G.task_id;
  r_tname : string;
  r_node : G.node_id;
  r_kind : string;
  r_label : string;
  r_fires : int;
  r_span : int;        (** Σ instance lifetimes (cycles) *)
  r_acc : int array;   (** per-cause cycles; Σ = [r_span] *)
  r_sref : G.struct_ref option;
}

(** Stall cycles charged to one hardware structure. *)
type struct_row = {
  s_ref : G.struct_ref;
  s_name : string;
  s_stalls : int;   (** cycles of Memory (structures) / Structural (queues) *)
  s_nodes : int;    (** distinct nodes charging it *)
  s_suggest : string;  (** the μopt pass family that widens it *)
}

(** Per-node totals along the critical path. *)
type crit_step = {
  cs_tname : string;
  cs_node : G.node_id;
  cs_kind : string;
  cs_count : int;   (** fire events of this node on the path *)
  cs_lat : int;     (** Σ service latency on the path *)
  cs_wait : int;    (** Σ cycles the consumer sat waiting for it *)
}

type crit = {
  c_len : int;      (** elapsed cycles covered by the path *)
  c_events : int;   (** fire events on the path *)
  c_steps : crit_step list;  (** sorted by lat+wait, descending *)
}

type t = {
  p_name : string;
  p_cycles : int;
  p_fires : int;
  p_rows : row list;   (** sorted by stall cycles, descending *)
  p_structs : struct_row list;  (** sorted by attributed stalls *)
  p_crit : crit option;
  p_occ : (string * (int * int) list) list;
      (** occupancy histograms: name -> (depth, samples) *)
  p_events_total : int;
  p_events_kept : int;
}

let busy_i = Tr.cause_index Tr.Busy
let idle_i = Tr.cause_index Tr.Idle

(** Stall cycles of a row: everything that is neither busy nor idle. *)
let row_stalls (r : row) : int =
  let s = ref 0 in
  Array.iteri
    (fun i v -> if i <> busy_i && i <> idle_i then s := !s + v)
    r.r_acc;
  !s

let operand_i = Tr.cause_index Tr.Operand

(** Resource stalls: hazards other than waiting for a producer.  Every
    node downstream of a bottleneck shows operand-wait, so ranking by
    resource stalls first pinpoints the node {e causing} the backup. *)
let row_resource_stalls (r : row) : int = row_stalls r - r.r_acc.(operand_i)

(** The dominant stall cause (idle excluded); [None] if never stalled. *)
let dominant (r : row) : Tr.cause option =
  let best = ref (-1) and bestv = ref 0 in
  Array.iteri
    (fun i v ->
      if i <> busy_i && i <> idle_i && v > !bestv then begin
        best := i;
        bestv := v
      end)
    r.r_acc;
  if !best < 0 then None else Some Tr.cause_of_index.(!best)

(** The conservation invariant every row must satisfy. *)
let conserved (r : row) : bool =
  Array.fold_left ( + ) 0 r.r_acc = r.r_span

(* ------------------------------------------------------------------ *)
(* Structure rollup                                                     *)

let suggest (c : G.circuit) : G.struct_ref -> string = function
  | G.Rstruct sid -> (
    match (G.structure c sid).shape with
    | G.Cache _ -> "-O cache-bank=N or -O localize"
    | G.Scratchpad _ -> "-O spad-bank=N (or a write-back buffer)")
  | G.Rqueue tid ->
    Fmt.str "-O queuing / -O tiling=N on task %s" (G.task c tid).tname

let structs_of_rows (c : G.circuit) (rows : row list) : struct_row list =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match r.r_sref with
      | None -> ()
      | Some sref ->
        let charged =
          match sref with
          | G.Rstruct _ -> r.r_acc.(Tr.cause_index Tr.Memory)
          | G.Rqueue _ -> r.r_acc.(Tr.cause_index Tr.Structural)
        in
        let stalls, nodes =
          Option.value ~default:(0, 0) (Hashtbl.find_opt tbl sref)
        in
        Hashtbl.replace tbl sref (stalls + charged, nodes + 1))
    rows;
  Hashtbl.fold
    (fun sref (s_stalls, s_nodes) acc ->
      { s_ref = sref; s_name = G.struct_ref_name c sref; s_stalls; s_nodes;
        s_suggest = suggest c sref }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare b.s_stalls a.s_stalls)

(** The structure the run blames most: the first row with any
    attributed stalls (rows are sorted by stalls, descending).  [None]
    when nothing stalled — the design is dependence-bound.  This is
    the measured counterpart of the static timing analysis's binding
    resource; drivers rank the static suggestion against it. *)
let dominant_struct (p : t) : struct_row option =
  List.find_opt (fun s -> s.s_stalls > 0) p.p_structs

(** Fraction of all node-lifetime cycles stalled on structure [name];
    0 if the structure is unknown or never charged. *)
let struct_share (p : t) (name : string) : float =
  let span = List.fold_left (fun a r -> a + r.r_span) 0 p.p_rows in
  if span = 0 then 0.0
  else
    match List.find_opt (fun s -> s.s_name = name) p.p_structs with
    | Some s -> float_of_int s.s_stalls /. float_of_int span
    | None -> 0.0

(* ------------------------------------------------------------------ *)
(* Critical path over the fire-event DAG                                *)

(* Each fire event's critical parent is the producer whose token
   arrived last: over the wired inputs of the firing node, the latest
   prior fire of each input's source, maximizing (fire cycle +
   latency).  Walking the backlinks from the last event of the run
   yields the chain of firings that determined the finish time; the
   cycles between consecutive links split into service (the producer's
   latency) and wait (queueing/arbitration the consumer sat through). *)

type fev = { f_c : int; f_task : int; f_inst : int; f_node : int; f_lat : int }

let critical (c : G.circuit) (evs : Tr.ev list) : crit option =
  let fires =
    List.filter_map
      (function
        | Tr.Efire { c; task; inst; node; lat } ->
          Some { f_c = c; f_task = task; f_inst = inst; f_node = node;
                 f_lat = lat }
        | _ -> None)
      evs
    |> Array.of_list
  in
  let n = Array.length fires in
  if n = 0 then None
  else begin
    (* Wired-input sources per (task, node). *)
    let srcs = Hashtbl.create 64 in
    List.iter
      (fun (t : G.task) ->
        List.iter
          (fun (e : G.edge) ->
            let k = (t.tid, fst e.dst) in
            Hashtbl.replace srcs k
              (fst e.src
              :: (try Hashtbl.find srcs k with Not_found -> [])))
          t.edges)
      c.tasks;
    (* Producers that cross the task boundary: a token arriving from a
       call/spawn node was really produced by the child task, so its
       LiveOut firings (any instance) are candidate parents too —
       without this the path would dead-end at the caller. *)
    let child_outs = Hashtbl.create 16 in
    List.iter
      (fun (t : G.task) ->
        List.iter
          (fun (n : G.node) ->
            match n.kind with
            | G.CallChild tid | G.SpawnChild tid ->
              let outs =
                List.filter_map
                  (fun (m : G.node) ->
                    match m.kind with
                    | G.LiveOut _ -> Some m.nid
                    | _ -> None)
                  (G.task c tid).nodes
              in
              Hashtbl.replace child_outs (t.tid, n.nid)
                (List.map (fun nid -> (tid, nid)) outs)
            | _ -> ())
          t.nodes)
      c.tasks;
    (* Last two fires per (inst, node) — and per (task, node) across
       instances, for the cross-task links.  Events arrive in cycle
       order, so the latest prior fire of a producer is its last
       record with a strictly smaller cycle — or the one before, when
       producer and consumer fired in the same cycle. *)
    let last = Hashtbl.create 256 in
    let lastg = Hashtbl.create 256 in
    let parent = Array.make n (-1) in
    Array.iteri
      (fun i f ->
        (match Hashtbl.find_opt srcs (f.f_task, f.f_node) with
        | None -> ()
        | Some ss ->
          let best = ref (-1) and best_arr = ref min_int in
          let consider tbl k =
            match Hashtbl.find_opt tbl k with
            | None -> ()
            | Some (j1, j2) ->
              let pick j =
                if j >= 0 && fires.(j).f_c < f.f_c then begin
                  let arr = fires.(j).f_c + fires.(j).f_lat in
                  if arr > !best_arr then begin
                    best := j;
                    best_arr := arr
                  end
                end
              in
              pick j1;
              pick j2
          in
          List.iter
            (fun s ->
              consider last (f.f_inst, s);
              match Hashtbl.find_opt child_outs (f.f_task, s) with
              | Some outs -> List.iter (consider lastg) outs
              | None -> ())
            ss;
          parent.(i) <- !best);
        let push tbl k =
          match Hashtbl.find_opt tbl k with
          | Some (j1, _) -> Hashtbl.replace tbl k (i, j1)
          | None -> Hashtbl.replace tbl k (i, -1)
        in
        push last (f.f_inst, f.f_node);
        push lastg (f.f_task, f.f_node))
      fires;
    (* End of the path: the event with the latest finish time. *)
    let final = ref 0 in
    Array.iteri
      (fun i f ->
        let fin = fires.(!final) in
        if f.f_c + f.f_lat > fin.f_c + fin.f_lat then final := i)
      fires;
    let steps = Hashtbl.create 32 in
    let count = ref 0 in
    let rec walk i =
      incr count;
      let f = fires.(i) in
      let p = parent.(i) in
      let wait =
        if p < 0 then 0
        else max 0 (f.f_c - (fires.(p).f_c + fires.(p).f_lat))
      in
      let k = (f.f_task, f.f_node) in
      let cnt, lat, w =
        Option.value ~default:(0, 0, 0) (Hashtbl.find_opt steps k)
      in
      Hashtbl.replace steps k (cnt + 1, lat + f.f_lat, w + wait);
      if p >= 0 then walk p else f.f_c
    in
    let start_c = walk !final in
    let fin = fires.(!final) in
    let c_steps =
      Hashtbl.fold
        (fun (tid, nid) (cs_count, cs_lat, cs_wait) acc ->
          let t = G.task c tid in
          let kind =
            match List.find_opt (fun (n : G.node) -> n.nid = nid) t.nodes with
            | Some n -> G.kind_to_string n.kind
            | None -> "?"
          in
          { cs_tname = t.tname; cs_node = nid; cs_kind = kind; cs_count;
            cs_lat; cs_wait }
          :: acc)
        steps []
      |> List.sort (fun a b ->
             compare (b.cs_lat + b.cs_wait) (a.cs_lat + a.cs_wait))
    in
    Some
      { c_len = fin.f_c + fin.f_lat - start_c; c_events = !count; c_steps }
  end

(* ------------------------------------------------------------------ *)
(* Assembly                                                             *)

let key_name (c : G.circuit) : Tr.key -> string = function
  | Tr.Ktask tid -> "queue:" ^ (G.task c tid).tname
  | Tr.Kstruct sid -> (G.structure c sid).sname

(** Build a profile from a finished run's counter bank.  [?tracer]
    adds the ring-derived views — critical path, occupancy histograms,
    event totals; without one those fields are empty and everything
    else is still exact. *)
let of_run (c : G.circuit) ?tracer (ctrs : Counters.t) : t =
  let acc = ref [] in
  Counters.iter_nodes
    (fun ~task:tid ~node:nid (g : Counters.node_ctr) ->
      let t = G.task c tid in
      match List.find_opt (fun (n : G.node) -> n.nid = nid) t.nodes with
      | None -> ()
      | Some n ->
        acc :=
          { r_task = tid; r_tname = t.tname; r_node = nid;
            r_kind = G.kind_to_string n.kind; r_label = n.label;
            r_fires = g.n_fires; r_span = g.n_span;
            r_acc = Array.copy g.n_acc; r_sref = G.node_structure c n }
          :: !acc)
    ctrs;
  let rows =
    List.sort
      (fun a b ->
        compare
          (row_resource_stalls b, row_stalls b, b.r_task, b.r_node)
          (row_resource_stalls a, row_stalls a, a.r_task, a.r_node))
      !acc
  in
  let occ =
    match tracer with
    | None -> []
    | Some tr ->
      List.map
        (fun k -> (key_name c k, Tr.occupancy_hist tr k))
        (Tr.occupancy_keys tr)
  in
  { p_name = c.cname; p_cycles = ctrs.Counters.final_cycle;
    p_fires = List.fold_left (fun a r -> a + r.r_fires) 0 rows;
    p_rows = rows; p_structs = structs_of_rows c rows;
    p_crit =
      (match tracer with
      | None -> None
      | Some tr -> critical c (Tr.events tr));
    p_occ = occ;
    p_events_total =
      (match tracer with None -> 0 | Some tr -> Tr.total_events tr);
    p_events_kept =
      (match tracer with None -> 0 | Some tr -> Tr.retained_events tr) }

(* ------------------------------------------------------------------ *)
(* Report                                                               *)

let pct num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let pp_row ppf (r : row) =
  let stalls = row_stalls r in
  let causes =
    List.filteri (fun i _ -> i <> busy_i && i <> idle_i)
      (Array.to_list (Array.mapi (fun i v -> (i, v)) r.r_acc))
    |> List.filter (fun (_, v) -> v > 0)
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> List.map (fun (i, v) ->
           Fmt.str "%s %.0f%%"
             (Tr.cause_name Tr.cause_of_index.(i))
             (pct v stalls))
  in
  Fmt.pf ppf "%-10s n%-3d %-18s fires=%-6d busy=%4.1f%% stall=%-7d %s%s"
    r.r_tname r.r_node r.r_kind r.r_fires
    (pct r.r_acc.(busy_i) r.r_span)
    stalls
    (String.concat ", " causes)
    (match r.r_sref with None -> "" | Some _ -> "")

let report ?(top = 10) ppf (p : t) =
  Fmt.pf ppf "profile %s: %d cycles, %d fires, %d events (%d retained)@."
    p.p_name p.p_cycles p.p_fires p.p_events_total p.p_events_kept;
  Fmt.pf ppf "@.top bottleneck nodes (resource stalls first, then total):@.";
  List.iteri
    (fun i r ->
      if i < top && row_stalls r > 0 then Fmt.pf ppf "  %a@." pp_row r)
    p.p_rows;
  Fmt.pf ppf "@.stall attribution by structure:@.";
  let span = List.fold_left (fun a r -> a + r.r_span) 0 p.p_rows in
  if List.for_all (fun s -> s.s_stalls = 0) p.p_structs then
    Fmt.pf ppf "  (no structure-attributed stalls)@."
  else
    List.iter
      (fun s ->
        if s.s_stalls > 0 then
          Fmt.pf ppf "  %-16s %8d cycles (%4.1f%% of node-time, %d node%s)  try %s@."
            s.s_name s.s_stalls (pct s.s_stalls span) s.s_nodes
            (if s.s_nodes = 1 then "" else "s")
            s.s_suggest)
      p.p_structs;
  (match p.p_crit with
  | None -> ()
  | Some cr ->
    Fmt.pf ppf
      "@.critical path (over retained fire events): %d cycles, %d firings@."
      cr.c_len cr.c_events;
    List.iteri
      (fun i (s : crit_step) ->
        if i < top then
          Fmt.pf ppf "  %-10s n%-3d %-18s x%-5d service=%-6d wait=%d@."
            s.cs_tname s.cs_node s.cs_kind s.cs_count s.cs_lat s.cs_wait)
      cr.c_steps);
  if p.p_occ <> [] then begin
    Fmt.pf ppf "@.occupancy histograms (depth:cycles):@.";
    List.iter
      (fun (name, hist) ->
        if hist <> [] then
          Fmt.pf ppf "  %-16s %s@." name
            (String.concat " "
               (List.map (fun (d, n) -> Fmt.str "%d:%d" d n) hist)))
      p.p_occ
  end

(* ------------------------------------------------------------------ *)
(* Dot heat overlay                                                     *)

(** Colors for `muirc dot --profile`: fill intensity follows fire
    count, the note line names the dominant stall cause. *)
let heat (p : t) : Dot.heat =
  let tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace tbl (r.r_task, r.r_node) r) p.p_rows;
  let maxf =
    List.fold_left (fun a r -> max a r.r_fires) 1 p.p_rows
  in
  let fill fires =
    (* white -> red ramp, sqrt-scaled so small counts stay visible *)
    let i = sqrt (float_of_int fires /. float_of_int maxf) in
    let g = 255 - int_of_float (195.0 *. i) in
    Fmt.str "#ff%02x%02x" g g
  in
  let h_node tid nid =
    match Hashtbl.find_opt tbl (tid, nid) with
    | None -> None
    | Some r ->
      let note =
        match dominant r with
        | Some cause ->
          Fmt.str "%d fires; %s %.0f%%" r.r_fires (Tr.cause_name cause)
            (pct (row_stalls r) r.r_span)
        | None -> Fmt.str "%d fires" r.r_fires
      in
      Some (fill r.r_fires, note)
  in
  let h_edge tid nid =
    match Hashtbl.find_opt tbl (tid, nid) with
    | None -> None
    | Some r ->
      let i = sqrt (float_of_int r.r_fires /. float_of_int maxf) in
      let v = 192 - int_of_float (160.0 *. i) in
      Some (Fmt.str "#c0%02x%02x" v v)
  in
  { Dot.h_node; h_edge }
