(** A minimal JSON layer shared by every machine-readable emitter in
    the toolchain: the Chrome trace exporter, the run-report writer and
    the design-space explorer.  No external dependency — the container
    bakes in none — so this is a tiny value type, an RFC 8259 escaper,
    a compact printer and a strict recursive-descent parser.

    Numbers keep their source representation split between [Int] and
    [Float] so integer counters round-trip byte-exactly (a cycle count
    never grows a [.0] suffix), which the byte-reproducible run reports
    rely on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Escaping (RFC 8259 §7)                                              *)

(** Escape [s] for inclusion inside a JSON string literal: quote and
    backslash get their two-character escapes, the named control
    characters their short forms, every other control character a
    [\u00XX] escape.  Anything ≥ 0x20 passes through (JSON strings are
    raw UTF-8). *)
let escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

(** A float rendered so the parser reads back the same value; never
    [nan]/[inf] (clamped to 0), never bare [.] forms JSON rejects. *)
let float_repr (f : float) : string =
  if not (Float.is_finite f) then "0"
  else
    let s = Printf.sprintf "%.17g" f in
    (* shortest representation that round-trips *)
    let shorter = Printf.sprintf "%.12g" f in
    if float_of_string shorter = f then shorter else s

let rec print (buf : Buffer.t) : t -> unit = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        print buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        print buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string (v : t) : string =
  let buf = Buffer.create 4096 in
  print buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Fmt.str "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect ch =
    match peek () with
    | Some c when c = ch -> advance ()
    | _ -> fail (Fmt.str "expected %C" ch)
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let hex c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail "bad \\u escape"
    in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'u' ->
          advance ();
          let v = ref 0 in
          for _ = 1 to 4 do
            match peek () with
            | Some c ->
              v := (!v * 16) + hex c;
              advance ()
            | None -> fail "bad \\u escape"
          done;
          (* decode the BMP code point as UTF-8; surrogate pairs of
             exotic names degrade to their raw halves, which is fine
             for counters and labels *)
          let cp = !v in
          if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
          else if cp < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
          end
        | _ -> fail "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          saw := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if not !saw then fail "expected digit"
    in
    digits ();
    let fractional = ref false in
    (match peek () with
    | Some '.' ->
      fractional := true;
      advance ();
      digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
      fractional := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let lit = String.sub s start (!pos - start) in
    if !fractional then Float (float_of_string lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> Float (float_of_string lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        Arr (elements [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "expected a value"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors (used by the report reader)                               *)

let member (key : string) : t -> t option = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let get (key : string) (v : t) : t =
  match member key v with
  | Some x -> x
  | None -> raise (Parse_error ("missing field " ^ key))

let to_int_exn : t -> int = function
  | Int i -> i
  | Float f -> int_of_float f
  | _ -> raise (Parse_error "expected a number")

let to_float_exn : t -> float = function
  | Int i -> float_of_int i
  | Float f -> f
  | _ -> raise (Parse_error "expected a number")

let to_str_exn : t -> string = function
  | Str s -> s
  | _ -> raise (Parse_error "expected a string")

let to_list : t -> t list = function Arr xs -> xs | _ -> []
