(** Cycle-level observability for the simulation kernel.

    A {!t} is a low-overhead event sink the kernel writes into while
    it runs: node firings, stall-cause transitions and per-structure
    occupancy samples land in a fixed-size ring buffer (old events are
    overwritten, aggregates are exact for the whole run).  Tracing is
    strictly opt-in — the kernel takes an [option] and every hook is a
    single match when disabled — and strictly passive: nothing in here
    feeds back into simulation timing, which is what lets the
    kernel-equivalence goldens in [test/test_sim.ml] assert identical
    cycle counts with tracing off and on.

    {2 The stall taxonomy}

    Every node's lifetime is partitioned into intervals, each labelled
    with exactly one cause.  The kernel transitions a node's label at
    the only points its state can change — a successful firing, a
    failed (woken) fire attempt, invocation drain — so the labels
    partition the node's lifetime {e exactly}:

      busy + Σ stall-cause cycles = lifetime cycles

    for every node, enforced over all workloads by [test/test_trace.ml].

    - [Busy]: the node fired this cycle.
    - [Operand]: at least one wired input channel is empty.
    - [Backpressure]: inputs ready but the output side is full (the
      node's pipeline register file cannot accept another result
      because downstream has not drained).
    - [Memory]: a memory node blocked on its outstanding-request
      window, i.e. waiting on bank queues, conflicts or misses.
    - [Structural]: a non-memory hardware hazard — the function unit's
      initiation interval, or a call/spawn facing a full child task
      queue.
    - [Sync]: a sync node parked until spawned children complete.
    - [Idle]: no invocation in flight; the node has no work. *)

type cause =
  | Busy
  | Operand
  | Backpressure
  | Memory
  | Structural
  | Sync
  | Idle

let ncauses = 7

let cause_index = function
  | Busy -> 0
  | Operand -> 1
  | Backpressure -> 2
  | Memory -> 3
  | Structural -> 4
  | Sync -> 5
  | Idle -> 6

let cause_of_index = [| Busy; Operand; Backpressure; Memory; Structural;
                        Sync; Idle |]

let cause_name = function
  | Busy -> "busy"
  | Operand -> "operand-wait"
  | Backpressure -> "backpressure"
  | Memory -> "memory-outstanding"
  | Structural -> "structural-hazard"
  | Sync -> "sync-wait"
  | Idle -> "idle"

(** What an occupancy sample measures: a task's invocation queue or
    the total queued sub-requests across a memory structure's banks. *)
type key = Ktask of int | Kstruct of int

type ev =
  | Efire of { c : int; task : int; inst : int; node : int; lat : int }
  | Estall of { c : int; task : int; inst : int; node : int; cause : cause }
  | Eocc of { c : int; key : key; depth : int }

let ev_cycle = function
  | Efire { c; _ } | Estall { c; _ } | Eocc { c; _ } -> c

(* ------------------------------------------------------------------ *)
(* Per-instance interval accounting                                     *)

module Prof = struct
  (** One node's running attribution: the current cause label, the
      cycle it was entered, and the per-cause accumulators. *)
  type nprof = {
    mutable st : int;      (** current cause (a [cause_index]) *)
    mutable since : int;   (** cycle the current label started *)
    acc : int array;       (** cycles per cause, [ncauses] wide *)
  }

  (** The per-instance profile: one [nprof] per node, indexed by the
      node's drain-order index. *)
  type iprof = { born : int; nprofs : nprof array }

  let make ~(born : int) ~(nnodes : int) : iprof =
    { born;
      nprofs =
        Array.init nnodes (fun _ ->
            { st = cause_index Idle; since = born;
              acc = Array.make ncauses 0 }) }

  (** Close the current interval at [now] and relabel; true if the
      label actually changed (callers use this to avoid flooding the
      ring with repeated stall events). *)
  let transition (np : nprof) (st : int) (now : int) : bool =
    if now > np.since then begin
      np.acc.(np.st) <- np.acc.(np.st) + (now - np.since);
      np.since <- now
    end;
    if np.st = st then false
    else begin
      np.st <- st;
      true
    end
end

(* ------------------------------------------------------------------ *)
(* The trace sink                                                       *)

(** Whole-run aggregate for one static (task, node) pair, across every
    instance/tile/context that instantiated it. *)
type agg = {
  mutable g_fires : int;
  mutable g_span : int;   (** Σ instance lifetimes, in cycles *)
  g_acc : int array;      (** cycles per cause; Σ = [g_span] *)
}

type t = {
  ring : ev array;
  mutable head : int;     (** total events ever emitted *)
  agg : (int * int, agg) Hashtbl.t;   (** (task, node) aggregates *)
  occ : (key, (int, int) Hashtbl.t) Hashtbl.t;
      (** occupancy histograms: key -> depth -> samples *)
  occ_last : (key, int) Hashtbl.t;
      (** last ring-emitted depth: samples only hit the ring on change *)
  sample_every : int;     (** occupancy sampling period, cycles *)
  mutable final_cycle : int;
}

let dummy_ev = Eocc { c = 0; key = Ktask 0; depth = 0 }

let create ?(capacity = 1 lsl 18) ?(sample_every = 1) () : t =
  { ring = Array.make (max capacity 1) dummy_ev; head = 0;
    agg = Hashtbl.create 128; occ = Hashtbl.create 16;
    occ_last = Hashtbl.create 16; sample_every = max sample_every 1;
    final_cycle = 0 }

let emit (tr : t) (e : ev) : unit =
  tr.ring.(tr.head mod Array.length tr.ring) <- e;
  tr.head <- tr.head + 1

(** Record one occupancy sample.  The histogram counts every sample;
    the ring only gets depth {e changes} (all the exporters need). *)
let occ_sample (tr : t) ~(c : int) (key : key) (depth : int) : unit =
  if Hashtbl.find_opt tr.occ_last key <> Some depth then begin
    Hashtbl.replace tr.occ_last key depth;
    emit tr (Eocc { c; key; depth })
  end;
  let h =
    match Hashtbl.find_opt tr.occ key with
    | Some h -> h
    | None ->
      let h = Hashtbl.create 8 in
      Hashtbl.add tr.occ key h;
      h
  in
  Hashtbl.replace h depth
    (1 + Option.value ~default:0 (Hashtbl.find_opt h depth))

(** Fold a finished instance's accounting into the whole-run
    aggregates.  [upto] is one past the last cycle the instance
    existed; closing each node's open interval there is what makes the
    conservation invariant exact. *)
let fold (tr : t) ~(task : int) ~(node : int) ~(fires : int) ~(born : int)
    ~(upto : int) (np : Prof.nprof) : unit =
  ignore (Prof.transition np np.st upto);
  let g =
    match Hashtbl.find_opt tr.agg (task, node) with
    | Some g -> g
    | None ->
      let g = { g_fires = 0; g_span = 0; g_acc = Array.make ncauses 0 } in
      Hashtbl.add tr.agg (task, node) g;
      g
  in
  g.g_fires <- g.g_fires + fires;
  g.g_span <- g.g_span + (upto - born);
  Array.iteri (fun i v -> g.g_acc.(i) <- g.g_acc.(i) + v) np.acc

(* ------------------------------------------------------------------ *)
(* Reading the ring                                                     *)

let total_events (tr : t) = tr.head
let retained_events (tr : t) = min tr.head (Array.length tr.ring)

(** Retained events, oldest first (chronological: the kernel emits in
    cycle order). *)
let events (tr : t) : ev list =
  let cap = Array.length tr.ring in
  let start = max 0 (tr.head - cap) in
  List.init (tr.head - start) (fun i -> tr.ring.((start + i) mod cap))

(** Occupancy histogram for [key]: (depth, samples) sorted by depth. *)
let occupancy_hist (tr : t) (key : key) : (int * int) list =
  match Hashtbl.find_opt tr.occ key with
  | None -> []
  | Some h ->
    Hashtbl.fold (fun d n acc -> (d, n) :: acc) h []
    |> List.sort compare

let occupancy_keys (tr : t) : key list =
  Hashtbl.fold (fun k _ acc -> k :: acc) tr.occ [] |> List.sort compare
