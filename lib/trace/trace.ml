(** Cycle-level event tracing for the simulation kernel.

    A {!t} is a low-overhead event sink the kernel writes into while
    it runs: node firings, stall-cause transitions and per-structure
    occupancy samples land in a fixed-size ring buffer (old events are
    overwritten).  Tracing is strictly opt-in — the kernel takes an
    [option] and every hook is a single match when disabled — and
    strictly passive: nothing in here feeds back into simulation
    timing, which is what lets the kernel-equivalence goldens in
    [test/test_sim.ml] assert identical cycle counts with tracing off
    and on.

    Exact whole-run aggregates do {e not} live here any more: the
    always-on counter bank in {!Counters} owns the stall taxonomy,
    interval accounting and per-(task, node) totals, and is maintained
    by the kernel whether or not a tracer is attached.  The ring is
    purely for timelines — the Chrome trace and VCD exporters and the
    critical-path extractor — so losing old events to overwrite (or
    running with [~capacity:0]) costs timeline depth, never a number. *)

(* Re-export the taxonomy so existing users of [Trace.Busy],
   [Trace.Prof] and [Trace.Ktask] keep compiling; the definitions live
   in {!Counters}, which the kernel maintains unconditionally. *)

type cause = Counters.cause =
  | Busy
  | Operand
  | Backpressure
  | Memory
  | Structural
  | Sync
  | Idle

let ncauses = Counters.ncauses
let cause_index = Counters.cause_index
let cause_of_index = Counters.cause_of_index
let cause_name = Counters.cause_name

type key = Counters.key = Ktask of int | Kstruct of int

module Prof = Counters.Prof

type ev =
  | Efire of { c : int; task : int; inst : int; node : int; lat : int }
  | Estall of { c : int; task : int; inst : int; node : int; cause : cause }
  | Eocc of { c : int; key : key; depth : int }

let ev_cycle = function
  | Efire { c; _ } | Estall { c; _ } | Eocc { c; _ } -> c

(* ------------------------------------------------------------------ *)
(* The trace sink                                                       *)

type t = {
  ring : ev array;
  mutable head : int;     (** total events ever emitted *)
  occ : (key, (int, int) Hashtbl.t) Hashtbl.t;
      (** occupancy histograms: key -> depth -> samples *)
  occ_last : (key, int) Hashtbl.t;
      (** last ring-emitted depth: samples only hit the ring on change *)
  sample_every : int;     (** occupancy sampling period, cycles *)
  mutable final_cycle : int;
}

let dummy_ev = Eocc { c = 0; key = Ktask 0; depth = 0 }

(** [~capacity:0] is legal: the tracer still collects occupancy
    histograms and event totals but retains no timeline — useful to
    prove the counter bank is ring-independent. *)
let create ?(capacity = 1 lsl 18) ?(sample_every = 1) () : t =
  { ring = Array.make (max capacity 0) dummy_ev; head = 0;
    occ = Hashtbl.create 16;
    occ_last = Hashtbl.create 16; sample_every = max sample_every 1;
    final_cycle = 0 }

let emit (tr : t) (e : ev) : unit =
  let cap = Array.length tr.ring in
  if cap > 0 then tr.ring.(tr.head mod cap) <- e;
  tr.head <- tr.head + 1

(** Record one occupancy sample.  The histogram counts every sample;
    the ring only gets depth {e changes} (all the exporters need). *)
let occ_sample (tr : t) ~(c : int) (key : key) (depth : int) : unit =
  if Hashtbl.find_opt tr.occ_last key <> Some depth then begin
    Hashtbl.replace tr.occ_last key depth;
    emit tr (Eocc { c; key; depth })
  end;
  let h =
    match Hashtbl.find_opt tr.occ key with
    | Some h -> h
    | None ->
      let h = Hashtbl.create 8 in
      Hashtbl.add tr.occ key h;
      h
  in
  Hashtbl.replace h depth
    (1 + Option.value ~default:0 (Hashtbl.find_opt h depth))

(* ------------------------------------------------------------------ *)
(* Reading the ring                                                     *)

let total_events (tr : t) = tr.head
let retained_events (tr : t) = min tr.head (Array.length tr.ring)

(** Retained events, oldest first (chronological: the kernel emits in
    cycle order). *)
let events (tr : t) : ev list =
  let cap = Array.length tr.ring in
  if cap = 0 then []
  else
    let start = max 0 (tr.head - cap) in
    List.init (tr.head - start) (fun i -> tr.ring.((start + i) mod cap))

(** Occupancy histogram for [key]: (depth, samples) sorted by depth. *)
let occupancy_hist (tr : t) (key : key) : (int * int) list =
  match Hashtbl.find_opt tr.occ key with
  | None -> []
  | Some h ->
    Hashtbl.fold (fun d n acc -> (d, n) :: acc) h []
    |> List.sort compare

let occupancy_keys (tr : t) : key list =
  Hashtbl.fold (fun k _ acc -> k :: acc) tr.occ [] |> List.sort compare
