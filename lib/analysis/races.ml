(** Parallel race detection on the compiler IR.

    TAPIR-style [spawn] makes the child task run concurrently with the
    continuation until the next [sync]; [parallel_for] lowers to a
    spawn per iteration.  Two sibling tasks — spawns mutually
    reachable without crossing a sync — therefore run unordered, and
    a pair of accesses to the same location with at least one write is
    a race.

    We summarise what each spawn may touch with a small affine address
    analysis: every address is [global + Σ cᵢ·leafᵢ + k] where leaves
    are registers the analysis cannot see through (parameters, phis,
    load results).  Spawn arguments are substituted into the callee's
    summary, so a [parallel_for] body indexed by the loop variable
    shows up in the caller as an affine function of the loop's header
    phi — the induction variable that distinguishes sibling
    iterations.  Independence is then arithmetic:

    - forms that differ by a nonzero constant never collide;
    - forms with one equal nonzero induction coefficient collide only
      when the iteration distance hits [-δ/c], impossible when [δ = 0]
      or [c ∤ δ];
    - equal forms with no induction dependence collide on every pair
      of iterations — a provable race, reported as an error;
    - anything the analysis cannot see through (distinct arrays
      aside) is reported as a may-race warning. *)

module I = Muir_ir.Instr
module F = Muir_ir.Func
module P = Muir_ir.Program
module T = Muir_ir.Types

(* ------------------------------------------------------------------ *)
(* Affine address forms                                                *)

(** A leaf is a register the analysis treats as opaque, tagged with
    its function so callee-internal leaves survive substitution into
    the caller without colliding with the caller's numbering. *)
type leaf = string * I.reg

type aff = {
  abase : string option;       (** global array the address points into *)
  acoeffs : (leaf * int) list; (** sorted by leaf, coefficients ≠ 0 *)
  akonst : int;
}

let aff_leaf (fn : string) (r : I.reg) : aff =
  { abase = None; acoeffs = [ ((fn, r), 1) ]; akonst = 0 }

let aff_const (k : int) : aff = { abase = None; acoeffs = []; akonst = k }

let norm_coeffs (cs : (leaf * int) list) =
  List.filter (fun (_, c) -> c <> 0) (List.sort compare cs)

(** [None] when the result is no longer a single-base affine form
    (two array bases added, a base scaled, …). *)
let aff_add (a : aff) (b : aff) : aff option =
  match (a.abase, b.abase) with
  | Some _, Some _ -> None
  | _ ->
    let merged =
      List.fold_left
        (fun acc (l, c) ->
          match List.assoc_opt l acc with
          | None -> (l, c) :: acc
          | Some c0 -> (l, c0 + c) :: List.remove_assoc l acc)
        a.acoeffs b.acoeffs
    in
    Some
      {
        abase = (match a.abase with Some _ -> a.abase | None -> b.abase);
        acoeffs = norm_coeffs merged;
        akonst = a.akonst + b.akonst;
      }

let aff_scale (k : int) (a : aff) : aff option =
  if a.abase <> None && k <> 1 then None
  else
    Some
      {
        abase = (if k = 0 then None else a.abase);
        acoeffs = norm_coeffs (List.map (fun (l, c) -> (l, c * k)) a.acoeffs);
        akonst = a.akonst * k;
      }

let aff_is_const (a : aff) = a.abase = None && a.acoeffs = []

(** Per-function affine environment: every register folded to a form,
    opaque results becoming their own leaf. *)
let affine_env (f : F.t) : (I.reg, aff) Hashtbl.t =
  let env = Hashtbl.create 64 in
  let leaf r = aff_leaf f.name r in
  List.iter (fun (p : F.param) -> Hashtbl.replace env p.preg (leaf p.preg))
    f.params;
  let of_op (op : I.operand) : aff option =
    match op with
    | I.Reg r ->
      Some
        (match Hashtbl.find_opt env r with Some a -> a | None -> leaf r)
    | I.CInt i -> Some (aff_const (Int64.to_int i))
    | I.CBool b -> Some (aff_const (if b then 1 else 0))
    | I.GlobalAddr g -> Some { abase = Some g; acoeffs = []; akonst = 0 }
    | I.CFloat _ -> None
  in
  let ( let* ) = Option.bind in
  let eval (i : I.t) : aff option =
    match i.kind with
    | I.Bin (I.Add, a, b) ->
      let* a = of_op a in
      let* b = of_op b in
      aff_add a b
    | I.Bin (I.Sub, a, b) ->
      let* a = of_op a in
      let* b = of_op b in
      let* nb = aff_scale (-1) b in
      aff_add a nb
    | I.Bin (I.Mul, a, b) -> (
      let* a = of_op a in
      let* b = of_op b in
      match (aff_is_const a, aff_is_const b) with
      | true, _ -> aff_scale a.akonst b
      | _, true -> aff_scale b.akonst a
      | _ -> None)
    | I.Bin (I.Shl, a, b) -> (
      let* a = of_op a in
      let* b = of_op b in
      if aff_is_const b && b.akonst >= 0 && b.akonst < 31 then
        aff_scale (1 lsl b.akonst) a
      else None)
    | I.Gep { base; index; scale } ->
      let* b = of_op base in
      let* i = of_op index in
      let* si = aff_scale scale i in
      aff_add b si
    | _ -> None
  in
  F.iter_instrs
    (fun (i : I.t) ->
      if not (T.equal_ty i.ty T.TUnit) then
        Hashtbl.replace env i.id
          (match eval i with Some a -> a | None -> leaf i.id))
    f;
  env

(* ------------------------------------------------------------------ *)
(* Access summaries                                                    *)

type access = {
  aspace : string option;  (** global array, [None] = could be anywhere *)
  awrite : bool;
  aform : aff option;      (** address form, [None] = whole space *)
}

let direct_accesses (env : (I.reg, aff) Hashtbl.t) (f : F.t) : access list =
  let of_addr (op : I.operand) : string option * aff option =
    let a =
      match op with
      | I.Reg r -> Hashtbl.find_opt env r
      | I.GlobalAddr g -> Some { abase = Some g; acoeffs = []; akonst = 0 }
      | I.CInt i -> Some (aff_const (Int64.to_int i))
      | _ -> None
    in
    match a with
    | Some ({ abase = Some g; _ } as a) -> (Some g, Some a)
    | _ -> (None, None)
  in
  F.fold_instrs
    (fun acc (i : I.t) ->
      match i.kind with
      | I.Load { addr } ->
        let sp, fm = of_addr addr in
        { aspace = sp; awrite = false; aform = fm } :: acc
      | I.Store { addr; _ } ->
        let sp, fm = of_addr addr in
        { aspace = sp; awrite = true; aform = fm } :: acc
      | I.Tload { addr; _ } ->
        (* tile ops sweep a rectangle; keep the array, drop the form *)
        let sp, _ = of_addr addr in
        { aspace = sp; awrite = false; aform = None } :: acc
      | I.Tstore { addr; _ } ->
        let sp, _ = of_addr addr in
        { aspace = sp; awrite = true; aform = None } :: acc
      | _ -> acc)
    [] f

(** Transitive may-touch sets [(array, writes?)], fixpoint over the
    call graph including spawn targets. *)
let touch_sets (p : P.t) : (string, (string option * bool) list) Hashtbl.t =
  let touch : (string, (string option * bool) list) Hashtbl.t =
    Hashtbl.create 16
  in
  let envs = Hashtbl.create 16 in
  List.iter
    (fun (f : F.t) ->
      Hashtbl.replace envs f.name (affine_env f);
      Hashtbl.replace touch f.name
        (List.sort_uniq compare
           (List.map
              (fun a -> (a.aspace, a.awrite))
              (direct_accesses (Hashtbl.find envs f.name) f))))
    p.funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : F.t) ->
        let cur = Hashtbl.find touch f.name in
        let extra =
          F.fold_instrs
            (fun acc (i : I.t) ->
              match i.kind with
              | I.Call { callee; _ } | I.Spawn { callee; _ } ->
                (match Hashtbl.find_opt touch callee with
                | Some ts -> ts @ acc
                | None -> acc)
              | _ -> acc)
            [] f
        in
        let merged = List.sort_uniq compare (extra @ cur) in
        if merged <> cur then begin
          Hashtbl.replace touch f.name merged;
          changed := true
        end)
      p.funcs
  done;
  touch

(** What one spawn site may touch, phrased in the caller's leaf space:
    the callee's direct accesses with parameters substituted by the
    actual arguments' forms, plus whole-space entries for everything
    deeper calls may reach. *)
let spawn_summary (p : P.t) ~(touch : (string, (string option * bool) list) Hashtbl.t)
    ~(caller_env : (I.reg, aff) Hashtbl.t) (caller : F.t)
    (callee_name : string) (args : I.operand list) : access list =
  if not (P.has_func p callee_name) then []
  else begin
    let g = P.find_func p callee_name in
    let genv = affine_env g in
    let subst : (leaf * aff) list =
      List.concat
        (List.mapi
           (fun i (prm : F.param) ->
             match List.nth_opt args i with
             | None -> []
             | Some op ->
               let a =
                 match op with
                 | I.Reg r -> (
                   match Hashtbl.find_opt caller_env r with
                   | Some a -> Some a
                   | None -> Some (aff_leaf caller.name r))
                 | I.CInt k -> Some (aff_const (Int64.to_int k))
                 | I.CBool b -> Some (aff_const (if b then 1 else 0))
                 | I.GlobalAddr gn ->
                   Some { abase = Some gn; acoeffs = []; akonst = 0 }
                 | I.CFloat _ -> None
               in
               match a with
               | Some a -> [ (((g.name, prm.preg) : leaf), a) ]
               | None -> [])
           g.params)
    in
    let subst_form (a : aff) : aff option =
      List.fold_left
        (fun acc (l, c) ->
          match acc with
          | None -> None
          | Some acc -> (
            match List.assoc_opt l subst with
            | None -> aff_add acc { abase = None; acoeffs = [ (l, c) ];
                                    akonst = 0 }
            | Some s -> (
              match aff_scale c s with
              | None -> None
              | Some sc -> aff_add acc sc)))
        (Some { abase = a.abase; acoeffs = []; akonst = a.akonst })
        a.acoeffs
    in
    let direct =
      List.map
        (fun (a : access) ->
          match a.aform with
          | None -> a
          | Some fm -> (
            match subst_form fm with
            | None -> { a with aform = None }
            | Some fm' ->
              { a with
                aspace =
                  (match fm'.abase with Some g -> Some g | None -> a.aspace);
                aform = Some fm' }))
        (direct_accesses genv g)
    in
    let deeper =
      F.fold_instrs
        (fun acc (i : I.t) ->
          match i.kind with
          | I.Call { callee; _ } | I.Spawn { callee; _ } ->
            (match Hashtbl.find_opt touch callee with
            | Some ts ->
              List.map
                (fun (sp, w) -> { aspace = sp; awrite = w; aform = None })
                ts
              @ acc
            | None -> acc)
          | _ -> acc)
        [] g
    in
    direct @ deeper
  end

(* ------------------------------------------------------------------ *)
(* Sibling spawn sites                                                 *)

type site = {
  sblock : I.label;
  sinstr : I.t;
  scallee : string;
  sargs : I.operand list;
}

(** Forward sync-free region of a spawn: the spawn sites reachable
    without crossing a [sync], and the blocks whose terminator is
    reached sync-free (used to decide which enclosing loops can
    deliver a second, concurrent instance of this spawn). *)
let sync_free_region (f : F.t) (s : site) :
    (int, unit) Hashtbl.t * (I.label, unit) Hashtbl.t =
  let sites_hit = Hashtbl.create 8 in
  let term_free = Hashtbl.create 8 in
  let visited = Hashtbl.create 8 in
  let scan_instrs blk_label (instrs : I.t list) : bool (* fell through *) =
    let rec go = function
      | [] -> true
      | (i : I.t) :: rest -> (
        match i.kind with
        | I.Sync -> false
        | I.Spawn _ ->
          Hashtbl.replace sites_hit i.id ();
          go rest
        | _ -> go rest)
    in
    let fell = go instrs in
    if fell then Hashtbl.replace term_free blk_label ();
    fell
  in
  let rec enter (l : I.label) =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.replace visited l ();
      let blk = F.block f l in
      if scan_instrs l blk.instrs then
        List.iter enter (F.successors blk)
    end
  in
  let b0 = F.block f s.sblock in
  let rec after = function
    | [] -> []
    | (i : I.t) :: rest -> if i == s.sinstr then rest else after rest
  in
  if scan_instrs s.sblock (after b0.instrs) then
    List.iter enter (F.successors b0);
  (sites_hit, term_free)

(** Header phis of the loops that can re-dispatch [s] without an
    intervening sync — the registers whose values distinguish two
    concurrent instances of the same spawn site. *)
let varying_ivs (f : F.t) (s : site) (term_free : (I.label, unit) Hashtbl.t)
    : (leaf list * I.label list) =
  let lps =
    List.filter
      (fun (lp : F.loop_info) ->
        List.mem s.sblock lp.body && Hashtbl.mem term_free lp.latch)
      f.loops
  in
  let ivs =
    List.concat_map
      (fun (lp : F.loop_info) ->
        List.filter_map
          (fun (i : I.t) ->
            match i.kind with
            | I.Phi _ -> Some ((f.name, i.id) : leaf)
            | _ -> None)
          (F.block f lp.header).instrs)
      lps
  in
  let bodies = List.concat_map (fun (lp : F.loop_info) -> lp.body) lps in
  (List.sort_uniq compare ivs, List.sort_uniq compare bodies)

(* ------------------------------------------------------------------ *)
(* Independence arithmetic                                             *)

type verdict = Safe | Maybe | Definite

(** Is leaf [l] guaranteed to hold the same value in both concurrent
    task instances?  Caller values defined outside the varying loops
    are captured once and shared; anything produced per iteration or
    inside the callee is private to each instance. *)
let shared_leaf (f : F.t) ~(ivs : leaf list) ~(varying_blocks : I.label list)
    (def_block : (I.reg, I.label) Hashtbl.t) (l : leaf) : bool =
  let fn, r = l in
  if fn <> f.name then false
  else if List.mem l ivs then false
  else if F.param_of_reg f r <> None then true
  else
    match Hashtbl.find_opt def_block r with
    | Some b -> not (List.mem b varying_blocks)
    | None -> false

let compare_pair (f : F.t) ~(ivs : leaf list)
    ~(varying_blocks : I.label list)
    (def_block : (I.reg, I.label) Hashtbl.t) (a1 : access) (a2 : access) :
    verdict =
  match (a1.aform, a2.aform) with
  | None, _ | _, None -> Maybe
  | Some f1, Some f2 ->
    let solid (a : aff) =
      List.for_all
        (fun (l, _) ->
          List.mem l ivs
          || shared_leaf f ~ivs ~varying_blocks def_block l)
        a.acoeffs
    in
    if not (solid f1 && solid f2) then Maybe
    else begin
      (* shared leaves must agree coefficient-wise to cancel *)
      let coeff a l = Option.value ~default:0 (List.assoc_opt l a.acoeffs) in
      let leaves =
        List.sort_uniq compare
          (List.map fst f1.acoeffs @ List.map fst f2.acoeffs)
      in
      let shared_mismatch =
        List.exists
          (fun l -> (not (List.mem l ivs)) && coeff f1 l <> coeff f2 l)
          leaves
      in
      if shared_mismatch then Maybe
      else begin
        let iv_terms =
          List.filter_map
            (fun l ->
              if List.mem l ivs then
                let c1 = coeff f1 l and c2 = coeff f2 l in
                if c1 = 0 && c2 = 0 then None else Some (l, c1, c2)
              else None)
            leaves
        in
        let delta = f1.akonst - f2.akonst in
        match iv_terms with
        | [] ->
          (* no induction dependence: same address every pair of
             iterations, or a constant separation *)
          if delta = 0 then Definite else Safe
        | [ (_, c1, c2) ] when c1 = c2 && List.length ivs = 1 ->
          (* one distinguishing iv: collision needs c·Δ = -δ with
             Δ ≠ 0 *)
          if delta = 0 || delta mod c1 <> 0 then Safe else Maybe
        | _ -> Maybe
      end
    end

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let spaces_may_overlap (a : access) (b : access) =
  match (a.aspace, b.aspace) with
  | Some g1, Some g2 -> g1 = g2
  | _ -> true

let space_name = function Some g -> "@" ^ g | None -> "memory"

let check_func (p : P.t) ~touch (f : F.t) : Diag.t list =
  let caller_env = affine_env f in
  let def_block : (I.reg, I.label) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (b : F.block) ->
      List.iter
        (fun (i : I.t) -> Hashtbl.replace def_block i.id b.label)
        b.instrs)
    f.blocks;
  let sites =
    List.concat_map
      (fun (b : F.block) ->
        List.filter_map
          (fun (i : I.t) ->
            match i.kind with
            | I.Spawn { callee; args } ->
              Some { sblock = b.label; sinstr = i; scallee = callee;
                     sargs = args }
            | _ -> None)
          b.instrs)
      f.blocks
  in
  if sites = [] then []
  else begin
    let summaries =
      List.map
        (fun s ->
          (s, spawn_summary p ~touch ~caller_env f s.scallee s.sargs))
        sites
    in
    let regions = List.map (fun s -> (s, sync_free_region f s)) sites in
    let diags = ref [] in
    let report s1 s2 verdict (a1 : access) (a2 : access) =
      let sp =
        match (a1.aspace, a2.aspace) with
        | Some g, _ | _, Some g -> Some g
        | _ -> None
      in
      let what =
        if a1.awrite && a2.awrite then "write" else "read and write"
      in
      match verdict with
      | Safe -> ()
      | Definite ->
        diags :=
          Diag.error ~code:"race" ~where:f.name
            "provable race: concurrent tasks spawned at bb%d (@%s)%s %s \
             the same address in %s on every pair of iterations"
            s1.sblock s1.scallee
            (if s1.sinstr == s2.sinstr then ""
             else Fmt.str " and bb%d (@%s)" s2.sblock s2.scallee)
            what (space_name sp)
          :: !diags
      | Maybe ->
        diags :=
          Diag.warning ~code:"race" ~where:f.name
            "tasks spawned at bb%d (@%s)%s may both %s %s without an \
             intervening sync; independence is not provable"
            s1.sblock s1.scallee
            (if s1.sinstr == s2.sinstr then ""
             else Fmt.str " and bb%d (@%s)" s2.sblock s2.scallee)
            what (space_name sp)
          :: !diags
    in
    let compare_sites (s1, sum1) (s2, sum2) ~ivs ~varying_blocks =
      List.iter
        (fun a1 ->
          List.iter
            (fun a2 ->
              if (a1.awrite || a2.awrite) && spaces_may_overlap a1 a2 then
                report s1 s2
                  (compare_pair f ~ivs ~varying_blocks def_block a1 a2)
                  a1 a2)
            sum2)
        sum1
    in
    (* self pairs: a site its own loop can re-dispatch concurrently *)
    List.iter
      (fun ((s : site), (hits, term_free)) ->
        if Hashtbl.mem hits s.sinstr.id then begin
          let ivs, varying_blocks = varying_ivs f s term_free in
          let sum = List.assq s summaries in
          compare_sites (s, sum) (s, sum) ~ivs ~varying_blocks
        end)
      regions;
    (* cross pairs: two distinct sites, either order sync-free *)
    List.iteri
      (fun i ((s1 : site), (hits1, _)) ->
        List.iteri
          (fun j ((s2 : site), (hits2, _)) ->
            if i < j
               && (Hashtbl.mem hits1 s2.sinstr.id
                  || Hashtbl.mem hits2 s1.sinstr.id)
            then begin
              let sum1 = List.assq s1 summaries in
              let sum2 = List.assq s2 summaries in
              (* no distinguishing ivs across sites: both instances
                 can come from the same iteration *)
              let varying_blocks =
                List.concat_map
                  (fun (lp : F.loop_info) ->
                    if List.mem s1.sblock lp.body
                       || List.mem s2.sblock lp.body
                    then lp.body
                    else [])
                  f.loops
              in
              compare_sites (s1, sum1) (s2, sum2) ~ivs:[] ~varying_blocks
            end)
          regions)
      regions;
    Diag.dedup (List.rev !diags)
  end

let check (p : P.t) : Diag.t list =
  let touch = touch_sets p in
  Diag.dedup (List.concat_map (check_func p ~touch) p.funcs)
