(** Static timing analysis: per-task steady-state II lower bounds and
    a whole-run cycle lower bound, from the graph alone.

    Each compiled task is abstracted into a timed token-flow graph in
    the sense of {!Sdf}:

    - every channel becomes a forward edge weighted with its
      producer's latency ({!Muir_core.Cost}) and marked with its
      initial tokens — plus one virtual token on a mu-node back edge
      (port 2), which the first firing skips, exactly as
      {!Liveness.blocking_edge} models it;
    - finite capacity becomes a zero-weight reverse edge marked with
      the free slots, the classical marked-graph encoding of
      backpressure;
    - a mu/steer loop ring therefore closes through the primed
      control edges, and the memory ordering chains close through
      their primed back edge;
    - a function unit with initiation interval [> 1] gets a
      one-token self-loop of that weight;
    - a call site into a serialized (non-wave-pipelined) loop child
      gets a self-loop marked with the child's in-flight window
      (queue slots + instances) and weighted with the child's
      per-invocation latency [R_min] — the caller parks on the full
      queue, so at most [window] invocations separate a firing from
      the completion that frees its slot.

    The maximum cycle ratio of that graph bounds the task's
    initiation interval from below; the attaining cycle is the
    critical cycle, and the provenance tags on its edges name the
    binding resource (task queue, memory chain, channel capacity,
    function unit, or the dataflow ring itself) — the structure a
    Dynamatic-style sizing pass would grow.

    {b Soundness.}  The whole-run bound multiplies per-cycle wave
    counts by statically-known trip counts ({!Muir_ir.Loops.trip_count})
    and is asserted [<= measured cycles] on every workload x stack
    pair by the test suite and the bench [timing] experiment.  Every
    step errs low:

    - counting is restricted to nodes that provably fire once per
      wave (mu, steer, merges, memory ops — which pass their ordering
      token even when predicated off — and computes fed only by
      those), so a cycle through an [if]-shadowed node never counts;
    - a loop invocation charges [floor((trips-1)/M) * W] — one fewer
      traversal than the ring really makes;
    - wave-pipelined leaf loops (no stores/calls/sync — the
      simulator's in-order concurrent invocations) overlap
      invocations, so they charge only the mu node's firing count at
      II 1 and their [R_min] ring term uses pure-dependence cycles
      (capacity and FU constraints are physical and shared across
      overlapped invocations, so they cannot be charged per wave);
    - dynamically-instanced tasks (on a call/spawn cycle) and
      unknown trip counts charge nothing;
    - gated calls receive immediate synthesized responses, so call
      latency is upgraded to the child's [R_min] only when the
      predicate is provably the wave token or the loop condition. *)

module G = Muir_core.Graph
module Cost = Muir_core.Cost
module T = Muir_ir.Types

(* ------------------------------------------------------------------ *)
(* Provenance and results                                              *)

(** Where an abstract-graph constraint came from. *)
type prov =
  | Pedge of G.edge          (** forward dependence through a channel *)
  | Pcap of G.edge           (** backpressure from finite capacity *)
  | Pii of G.node_id         (** function-unit initiation interval *)
  | Pwindow of G.task_id     (** a child task's in-flight window *)

(** The resource binding a critical cycle. *)
type binding =
  | Bqueue of G.task_id      (** child task queue/instance window *)
  | Bmem of G.struct_id      (** memory ordering chain of a structure *)
  | Bbuffer of int           (** channel capacity (edge id) *)
  | Bfu of G.node_id         (** a long-II function unit *)
  | Bring                    (** pure dataflow dependence *)

type ii_bound =
  | Unconstrained            (** no cycle: waves stream freely *)
  | Deadlocked of G.node_id list
      (** zero-token cycle — liveness reports the same ring as an
          error; the II is infinite *)
  | Bounded of {
      num : int;
      den : int;             (** II >= num/den cycles per wave *)
      cycle : G.node_id list; (** the critical cycle, in ring order *)
      binding : binding;
    }

type task_timing = {
  tt_tid : G.task_id;
  tt_name : string;
  tt_ii : ii_bound;
  tt_trips : int option;     (** static body-trip count (loop tasks) *)
  tt_ninv : int;             (** statically-counted invocations; 0 =
                                 unknown (dynamic or unbounded calls) *)
  tt_rmin : int;             (** per-invocation latency lower bound *)
  tt_bound : int;            (** whole-run cycles this task alone forces *)
  tt_pipelined : bool;       (** leaf loop: invocations wave-pipeline *)
  tt_dynamic : bool;         (** on a call/spawn cycle *)
}

type t = {
  tasks : task_timing list;  (** in task-id order *)
  bound : int;  (** lower bound on the run's total cycles; 0 = vacuous *)
}

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)

let ceil_div a b = if b <= 0 then 0 else (a + b - 1) / b

(** Depth of the simulator's per-node pipeline output ring: a node
    keeps firing until [pipe_slots] results await drain, so finite
    channel capacity backpressures this many firings late. *)
let pipe_slots = 4

(** [floor((waves - 1) / m) * w]: full traversals a ring with marking
    [m] and weight [w] must make to pass [waves] firings through every
    node on it — deliberately one traversal short. *)
let counted_traversals ~(waves : int) ~(w : int) ~(m : int) : int =
  if waves <= 1 || m <= 0 then 0 else (waves - 1) / m * w

(* ------------------------------------------------------------------ *)
(* Per-task structural facts                                           *)

(** How a node's predicate input (port 0 of memory/call nodes) is
    driven.  Only the provably-every-wave classes justify charging
    the child's full latency: a gated call or load is answered
    immediately by the simulator. *)
type pred_class = AlwaysTrue | LoopCond | Other

type tctx = {
  ctx : Liveness.ctx;
  every_wave : (int, unit) Hashtbl.t;
      (** nodes firing once per wave, proven structurally *)
  pred_of : G.node -> pred_class;
  idx_of : (int, int) Hashtbl.t;   (** node id -> dense index *)
  nid_of : int array;              (** dense index -> node id *)
}

let make_tctx (t : G.task) : tctx =
  let ctx = Liveness.make_ctx t in
  let nodes = t.nodes in
  let n = List.length nodes in
  let idx_of = Hashtbl.create n and nid_of = Array.make (max n 1) 0 in
  List.iteri
    (fun i (nd : G.node) ->
      Hashtbl.replace idx_of nd.nid i;
      nid_of.(i) <- nd.nid)
    nodes;
  (* The wave token's entry: LiveIn 0, and the token mu primed from
     it (build wires LiveIn 0 into the token mu's init port). *)
  let livein0 =
    List.find_opt
      (fun (nd : G.node) -> nd.kind = G.LiveIn 0)
      nodes
  in
  let li0 = match livein0 with Some nd -> nd.nid | None -> -1 in
  let mu_tok =
    List.fold_left
      (fun acc (e : G.edge) ->
        if fst e.src = li0 && snd e.dst = 1
           && (match (ctx.Liveness.node_of (fst e.dst)).kind with
              | G.MergeLoop -> true
              | _ -> false)
        then fst e.dst
        else acc)
      (-1) t.edges
  in
  (* The loop-condition port: source of the primed control edges into
     the mu nodes' ctl inputs. *)
  let ctl_srcs = Hashtbl.create 4 in
  List.iter
    (fun (e : G.edge) ->
      match e.initial with
      | [ T.VBool false ]
        when snd e.dst = 0
             && (match (ctx.Liveness.node_of (fst e.dst)).kind with
                | G.MergeLoop -> true
                | _ -> false) ->
        Hashtbl.replace ctl_srcs e.src ()
      | _ -> ())
    t.edges;
  let pred_of (nd : G.node) : pred_class =
    match nd.ins.(0) with
    | G.Simm v -> if Liveness.truthy v then AlwaysTrue else Other
    | G.Swire -> (
      match
        List.find_opt
          (fun (e : G.edge) -> snd e.dst = 0)
          (ctx.Liveness.ins_of nd.nid)
      with
      | None -> Other
      | Some e ->
        if fst e.src = li0 || fst e.src = mu_tok then AlwaysTrue
        else if Hashtbl.mem ctl_srcs e.src then LoopCond
        else Other)
  in
  (* Nodes that fire once per wave: control and memory plumbing
     always does (predicated-off memory ops and calls still consume
     and forward their tokens); a compute does iff everything feeding
     it does, and nothing feeding it is a steer output (a steer emits
     on only one side). *)
  let every_wave = Hashtbl.create n in
  List.iter
    (fun (nd : G.node) ->
      match nd.kind with
      | G.MergeLoop | G.Steer | G.FusedSteer _ | G.Merge _
      | G.LiveIn _ | G.LiveOut _
      | G.Load _ | G.Store _ | G.Tload _ | G.Tstore _
      | G.CallChild _ | G.SpawnChild _ | G.SyncWait ->
        Hashtbl.replace every_wave nd.nid ()
      | G.Compute _ | G.Fused _ | G.Tcompute _ -> ())
    nodes;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (nd : G.node) ->
        match nd.kind with
        | G.Compute _ | G.Fused _ | G.Tcompute _
          when not (Hashtbl.mem every_wave nd.nid) ->
          let ok =
            List.for_all
              (fun (e : G.edge) ->
                Hashtbl.mem every_wave (fst e.src)
                &&
                match (ctx.Liveness.node_of (fst e.src)).kind with
                | G.Steer | G.FusedSteer _ -> false
                | _ -> true)
              (ctx.Liveness.ins_of nd.nid)
          in
          if ok then begin
            Hashtbl.replace every_wave nd.nid ();
            changed := true
          end
        | _ -> ())
      nodes
  done;
  { ctx; every_wave; pred_of; idx_of; nid_of }

(** Chain ports: inputs appended beyond a memory node's base arity
    carry the ordering token, not data. *)
let chain_port (nd : G.node) (port : int) : bool =
  match nd.kind with
  | G.Load _ -> port >= 2
  | G.Store _ -> port >= 3
  | G.Tload _ -> port >= 3
  | G.Tstore _ -> port >= 4
  | _ -> false

(** The simulator wave-pipelines invocations of leaf loops only. *)
let pipelined (t : G.task) : bool =
  (match t.tkind with G.Tloop _ -> true | G.Tfunc -> false)
  && List.for_all
       (fun (nd : G.node) ->
         match nd.kind with
         | G.Store _ | G.Tstore _ | G.CallChild _ | G.SpawnChild _
         | G.SyncWait -> false
         | _ -> true)
       t.nodes

(** Tasks on a call/spawn cycle use dynamic instances: their
    invocation counts and windows are unbounded statically. *)
let dynamic_tasks (c : G.circuit) : bool array =
  let n = List.length c.tasks in
  let reach = Array.make_matrix n n false in
  List.iter
    (fun (t : G.task) ->
      List.iter (fun ch -> reach.(t.tid).(ch) <- true) t.children)
    c.tasks;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if reach.(i).(k) then
        for j = 0 to n - 1 do
          if reach.(k).(j) then reach.(i).(j) <- true
        done
    done
  done;
  Array.init n (fun i -> reach.(i).(i))

(* ------------------------------------------------------------------ *)
(* Graph abstraction                                                   *)

type flavor =
  | Full       (** dependence + capacity + FU + child windows *)
  | Dep_only   (** pure dependence: per-wave chains that hold even
                   when other invocations interleave *)

(** Abstract one task.  [out_lat] maps a producing node to the weight
    of its outgoing tokens (call sites upgraded to the child's
    [R_min] by the caller); [window] yields a call site's in-flight
    self-loop, when sound.  [restrict] keeps only every-wave nodes
    (for counted whole-run bounds). *)
let build_sdf (tc : tctx) ~(flavor : flavor) ~(restrict : bool)
    ~(out_lat : G.node -> int)
    ~(window : G.node -> (int * int * G.task_id) option) :
    prov Sdf.edge list =
  let t = tc.ctx.Liveness.t in
  let keep nid = (not restrict) || Hashtbl.mem tc.every_wave nid in
  let idx nid = Hashtbl.find tc.idx_of nid in
  let acc = ref [] in
  List.iter
    (fun (e : G.edge) ->
      let dn = tc.ctx.Liveness.node_of (fst e.dst) in
      let init_port =
        match dn.kind with G.MergeLoop -> snd e.dst = 1 | _ -> false
      in
      (* A mu init edge is consumed only by the first firing: it
         constrains no steady-state wave, in either direction. *)
      if (not init_port) && keep (fst e.src) && keep (fst e.dst) then begin
        let sn = tc.ctx.Liveness.node_of (fst e.src) in
        let back =
          match dn.kind with G.MergeLoop -> snd e.dst = 2 | _ -> false
        in
        let m = List.length e.initial + if back then 1 else 0 in
        acc :=
          { Sdf.esrc = idx (fst e.src); edst = idx (fst e.dst);
            ew = out_lat sn; em = m; etag = Pedge e }
          :: !acc;
        (* Backpressure is looser than the FIFO capacity alone: a full
           output channel blocks the *drain*, not the fire — each node
           holds up to [pipe_slots] undrained results in its pipeline
           ring, so the producer runs [capacity + pipe_slots] firings
           ahead.  Sources that never block on a full output are
           exempt entirely: memory nodes (the simulator skips the
           ring-occupancy check for them) and call/spawn sites, whose
           responses land in an unbounded completion store before
           being emitted. *)
        let exempt =
          G.is_memory_node sn
          || match sn.kind with
             | G.CallChild _ | G.SpawnChild _ -> true
             | _ -> false
        in
        if flavor = Full && not exempt then begin
          let free = e.capacity - List.length e.initial in
          acc :=
            { Sdf.esrc = idx (fst e.dst); edst = idx (fst e.src);
              ew = 0; em = max 0 free + pipe_slots; etag = Pcap e }
            :: !acc
        end
      end)
    t.edges;
  if flavor = Full then
    List.iter
      (fun (nd : G.node) ->
        if keep nd.nid then begin
          let ii = (Cost.node_cost nd.kind).Cost.ii in
          if ii > 1 then
            acc :=
              { Sdf.esrc = idx nd.nid; edst = idx nd.nid; ew = ii; em = 1;
                etag = Pii nd.nid }
              :: !acc;
          match window nd with
          | Some (w, m, child) ->
            acc :=
              { Sdf.esrc = idx nd.nid; edst = idx nd.nid; ew = w; em = m;
                etag = Pwindow child }
              :: !acc
          | None -> ()
        end)
      t.nodes;
  !acc

(** The binding resource of a critical cycle, by provenance priority:
    a child window or a call site's service latency (the cycle turns
    at the child's rate — its queue/instances are what to widen), then
    a memory ordering chain, then channel capacity, then a long-II
    unit; a cycle of pure forward data edges is the dataflow ring
    itself. *)
let classify (c : G.circuit) (tc : tctx) (cyc : prov Sdf.edge list) :
    binding =
  let find f = List.find_map f cyc in
  let window_child =
    match
      find (fun e ->
          match e.Sdf.etag with Pwindow t -> Some t | _ -> None)
    with
    | Some tid -> Some tid
    | None ->
      find (fun e ->
          match e.Sdf.etag with
          | Pedge ge -> (
            match (tc.ctx.Liveness.node_of (fst ge.src)).kind with
            | G.CallChild ct -> Some ct
            | _ -> None)
          | _ -> None)
  in
  match window_child with
  | Some tid -> Bqueue tid
  | None -> (
    let mem_chain =
      find (fun e ->
          match e.Sdf.etag with
          | Pedge ge ->
            let dn = tc.ctx.Liveness.node_of (fst ge.dst) in
            if chain_port dn (snd ge.dst) then
              match G.node_space dn with
              | Some sp -> Some (G.structure_of_space c sp).G.sid
              | None -> None
            else None
          | _ -> None)
    in
    match mem_chain with
    | Some sid -> Bmem sid
    | None -> (
      match
        find (fun e ->
            match e.Sdf.etag with Pcap ge -> Some ge.eid | _ -> None)
      with
      | Some eid -> Bbuffer eid
      | None -> (
        match
          find (fun e ->
              match e.Sdf.etag with Pii nid -> Some nid | _ -> None)
        with
        | Some nid -> Bfu nid
        | None -> Bring)))

(* ------------------------------------------------------------------ *)
(* The analysis                                                        *)

let analyze (c : G.circuit) : t =
  let ntasks = List.length c.tasks in
  let dyn = dynamic_tasks c in
  let task_arr = Array.make ntasks None in
  List.iter (fun (t : G.task) -> task_arr.(t.tid) <- Some t) c.tasks;
  let task tid = Option.get task_arr.(tid) in
  let tctxs = Array.init ntasks (fun tid -> make_tctx (task tid)) in
  (* Static trip counts, matched to loop tasks by build naming. *)
  let trips_by_name = Hashtbl.create 16 in
  List.iter
    (fun (f : Muir_ir.Func.t) ->
      List.iter
        (fun (lp : Muir_ir.Func.loop_info) ->
          match Muir_ir.Loops.trip_count f lp with
          | Some tr ->
            Hashtbl.replace trips_by_name
              (Muir_core.Build.task_of_loop_name f lp) tr
          | None -> ())
        f.loops)
    c.prog.Muir_ir.Program.funcs;
  let trips tid = Hashtbl.find_opt trips_by_name (task tid).tname in
  let pipe = Array.init ntasks (fun tid -> pipelined (task tid)) in

  (* Per-invocation latency floor, children first.  The recursion
     guard breaks call cycles (those tasks are dynamic anyway). *)
  let rmin_memo = Array.make ntasks None in
  let rmin_stack = Array.make ntasks false in
  let rec rmin (tid : G.task_id) : int =
    match rmin_memo.(tid) with
    | Some v -> v
    | None ->
      if rmin_stack.(tid) then 1
      else begin
        rmin_stack.(tid) <- true;
        let t = task tid and tc = tctxs.(tid) in
        (* Longest path to the done live-out over blocking edges;
           merges take the min over their value arms (only the taken
           arm ever feeds a firing). *)
        let fmemo = Hashtbl.create 32 in
        let on_path = Hashtbl.create 8 in
        let rec f_of nid : int =
          match Hashtbl.find_opt fmemo nid with
          | Some v -> v
          | None ->
            if Hashtbl.mem on_path nid then 0
            else begin
              Hashtbl.replace on_path nid ();
              let nd = tc.ctx.Liveness.node_of nid in
              let contribs =
                List.filter_map
                  (fun (e : G.edge) ->
                    if Liveness.blocking_edge tc.ctx.Liveness.node_of e
                    then
                      let sn = tc.ctx.Liveness.node_of (fst e.src) in
                      Some (snd e.dst, f_of (fst e.src) + out_lat tc sn)
                    else None)
                  (tc.ctx.Liveness.ins_of nid)
              in
              let v =
                match nd.kind with
                | G.Merge k ->
                  let preds, vals =
                    List.partition (fun (p, _) -> p < k) contribs
                  in
                  let maxl l =
                    List.fold_left (fun a (_, x) -> max a x) 0 l
                  in
                  let minl = function
                    | [] -> 0
                    | l ->
                      List.fold_left
                        (fun a (_, x) -> min a x)
                        max_int l
                  in
                  max (maxl preds) (minl vals)
                | _ ->
                  List.fold_left (fun a (_, x) -> max a x) 0 contribs
              in
              Hashtbl.remove on_path nid;
              Hashtbl.replace fmemo nid v;
              v
            end
        in
        let lo0 =
          List.find_opt
            (fun (nd : G.node) -> nd.kind = G.LiveOut 0)
            t.nodes
        in
        let path = match lo0 with Some nd -> f_of nd.nid | None -> 1 in
        (* A loop invocation additionally makes its counted ring
           traversals before the final wave can exit.  Dependence
           cycles only: capacity and FU slots are shared with
           overlapping invocations when the loop is pipelined. *)
        let ring =
          match (t.tkind, trips tid) with
          | G.Tloop _, Some tr when tr > 1 ->
            let edges =
              build_sdf tctxs.(tid) ~flavor:Dep_only ~restrict:true
                ~out_lat:(fun nd -> out_lat tc nd)
                ~window:(fun _ -> None)
            in
            (match Sdf.max_cycle_ratio (List.length t.nodes) edges with
            | Sdf.Ratio { cyc; _ } ->
              let w, m = Sdf.cycle_sums cyc in
              counted_traversals ~waves:tr ~w ~m
            | Sdf.Acyclic | Sdf.Unbounded _ -> 0)
          | _ -> 0
        in
        let v = max 1 (path + ring) in
        rmin_stack.(tid) <- false;
        rmin_memo.(tid) <- Some v;
        v
      end
  (* Weight of a producer's output tokens: its latency, with call
     sites into non-dynamic children upgraded to the child's R_min
     when the predicate provably holds on every counted wave. *)
  and out_lat (tc : tctx) (nd : G.node) : int =
    match nd.kind with
    | G.CallChild child
      when (not dyn.(child))
           && (match tc.pred_of nd with
              | AlwaysTrue | LoopCond -> true
              | Other -> false) ->
      max (Cost.node_cost nd.kind).Cost.latency (rmin child)
    | k -> (Cost.node_cost k).Cost.latency
  in
  (* A serialized loop child admits at most queue + instances
     in-flight invocations; past that, a call firing waits for a
     completion a full R_min ago. *)
  let window (tc : tctx) (nd : G.node) : (int * int * G.task_id) option =
    match nd.kind with
    | G.CallChild child -> (
      let ct = task child in
      match ct.tkind with
      | G.Tloop _
        when (not dyn.(child))
             && (not pipe.(child))
             && (match tc.pred_of nd with
                | AlwaysTrue | LoopCond -> true
                | Other -> false) ->
        let m = (ct.queue_depth * max ct.tiles 1) + ct.tiles in
        Some (rmin child, m, child)
      | _ -> None)
    | _ -> None
  in

  (* Statically-counted invocations per task, root first. *)
  let sites = Array.make ntasks [] in
  List.iter
    (fun (t : G.task) ->
      List.iter
        (fun (nd : G.node) ->
          match nd.kind with
          | G.CallChild ch | G.SpawnChild ch ->
            sites.(ch) <- (t.tid, nd) :: sites.(ch)
          | _ -> ())
        t.nodes)
    c.tasks;
  let ninv_memo = Array.make ntasks None in
  let ninv_stack = Array.make ntasks false in
  let rec ninv (tid : G.task_id) : int =
    match ninv_memo.(tid) with
    | Some v -> v
    | None ->
      if ninv_stack.(tid) then 0
      else begin
        ninv_stack.(tid) <- true;
        let v =
          if tid = c.root then 1
          else
            List.fold_left
              (fun acc (ptid, nd) ->
                if dyn.(ptid) then acc
                else
                  let pn = ninv ptid in
                  if pn = 0 then acc
                  else
                    match tctxs.(ptid).pred_of nd with
                    | Other -> acc
                    | AlwaysTrue | LoopCond -> (
                      match (task ptid).tkind with
                      | G.Tfunc -> acc + pn
                      | G.Tloop _ -> (
                        match trips ptid with
                        | Some tr -> acc + (pn * tr)
                        | None -> acc)))
              0 sites.(tid)
        in
        ninv_stack.(tid) <- false;
        ninv_memo.(tid) <- Some v;
        v
      end
  in

  (* Assemble per-task timings. *)
  let timings =
    List.map
      (fun (t : G.task) ->
        let tid = t.tid and tc = tctxs.(t.tid) in
        let nn = List.length t.nodes in
        let full ~restrict =
          build_sdf tc ~flavor:Full ~restrict
            ~out_lat:(fun nd -> out_lat tc nd)
            ~window:(fun nd -> window tc nd)
        in
        (* Reported steady-state II: the full graph, no counting
           restriction — a per-wave description of the ring. *)
        let tt_ii =
          match Sdf.max_cycle_ratio nn (full ~restrict:false) with
          | Sdf.Acyclic -> Unconstrained
          | Sdf.Unbounded cyc ->
            Deadlocked
              (List.map (fun e -> tc.nid_of.(e.Sdf.esrc)) cyc)
          | Sdf.Ratio { num; den; cyc } ->
            Bounded
              { num; den;
                cycle = List.map (fun e -> tc.nid_of.(e.Sdf.esrc)) cyc;
                binding = classify c tc cyc }
        in
        let tr = trips tid in
        let nv = if dyn.(tid) then 0 else ninv tid in
        let tiles = max t.tiles 1 in
        let ninst = ceil_div nv tiles in
        (* Whole-run charge: counted firings of every-wave nodes
           through the restricted graph's critical cycle. *)
        let counted_bound ~waves =
          match Sdf.max_cycle_ratio nn (full ~restrict:true) with
          | Sdf.Ratio { cyc; _ } ->
            let w, m = Sdf.cycle_sums cyc in
            counted_traversals ~waves ~w ~m
          | Sdf.Acyclic | Sdf.Unbounded _ -> 0
        in
        let tt_bound =
          if dyn.(tid) || nv = 0 then 0
          else
            match t.tkind with
            | G.Tfunc -> counted_bound ~waves:ninst
            | G.Tloop _ -> (
              match tr with
              | None -> 0
              | Some trc ->
                if pipe.(tid) then
                  (* overlapped invocations: only the shared mu's
                     firing count separates them *)
                  max 0 ((ninst * (trc + 1)) - 1)
                else ninst * counted_bound ~waves:trc)
        in
        { tt_tid = tid; tt_name = t.tname; tt_ii; tt_trips = tr;
          tt_ninv = nv; tt_rmin = rmin tid; tt_bound;
          tt_pipelined = pipe.(tid); tt_dynamic = dyn.(tid) })
      (List.sort (fun (a : G.task) b -> compare a.tid b.tid) c.tasks)
  in
  let bound =
    List.fold_left
      (fun acc tt -> max acc tt.tt_bound)
      (rmin c.root) timings
  in
  { tasks = timings; bound }

(** The whole-run cycle lower bound alone (the DSE admission test). *)
let bound_cycles (c : G.circuit) : int = (analyze c).bound

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let binding_sref : binding -> G.struct_ref option = function
  | Bqueue tid -> Some (G.Rqueue tid)
  | Bmem sid -> Some (G.Rstruct sid)
  | Bbuffer _ | Bfu _ | Bring -> None

let binding_name (c : G.circuit) : binding -> string = function
  | Bqueue tid -> "queue:" ^ (G.task c tid).tname
  | Bmem sid -> (G.structure c sid).sname
  | Bbuffer eid -> Fmt.str "channel e%d" eid
  | Bfu nid -> Fmt.str "fu n%d" nid
  | Bring -> "dataflow ring"

(** The Dynamatic-style fix: which knob grows the binding resource. *)
let suggest (c : G.circuit) : binding -> string = function
  | Bqueue tid ->
    Fmt.str "widen task %s: -O tiling=N adds instances, -O queuing \
             deepens its queue"
      (G.task c tid).tname
  | Bmem sid -> (
    match (G.structure c sid).shape with
    | G.Cache _ -> "split the chain: -O cache-bank=N or -O localize"
    | G.Scratchpad _ -> "split the chain: -O spad-bank=N")
  | Bbuffer eid ->
    Fmt.str "grow channel e%d's capacity (op-fusion re-times the ring)"
      eid
  | Bfu nid -> Fmt.str "pipeline or replicate the unit at n%d" nid
  | Bring -> "shorten the ring: -O fusion collapses mu/steer stages"

let pp_cycle ppf (cycle : G.node_id list) =
  Fmt.pf ppf "%a"
    Fmt.(list ~sep:(any " -> ") (fun ppf n -> pf ppf "n%d" n))
    cycle

let pp_task (c : G.circuit) ppf (tt : task_timing) =
  Fmt.pf ppf "%-16s" tt.tt_name;
  (match tt.tt_ii with
  | Unconstrained -> Fmt.pf ppf " II>=1 (no ring)"
  | Deadlocked cyc -> Fmt.pf ppf " II=inf (deadlock: %a)" pp_cycle cyc
  | Bounded { num; den; cycle; binding } ->
    Fmt.pf ppf " II>=%d" ((num + den - 1) / den);
    if den <> 1 then Fmt.pf ppf " (%d/%d)" num den;
    Fmt.pf ppf "  binds %s  cycle %a" (binding_name c binding) pp_cycle
      cycle);
  (match tt.tt_trips with
  | Some tr -> Fmt.pf ppf "  trips=%d" tr
  | None -> ());
  if tt.tt_ninv > 0 then Fmt.pf ppf " ninv=%d" tt.tt_ninv;
  if tt.tt_dynamic then Fmt.pf ppf " dynamic";
  if tt.tt_pipelined then Fmt.pf ppf " pipelined";
  Fmt.pf ppf "  rmin=%d bound=%d" tt.tt_rmin tt.tt_bound

let report (c : G.circuit) ppf (a : t) =
  Fmt.pf ppf "@[<v>static timing of %s:@," c.cname;
  List.iter (fun tt -> Fmt.pf ppf "  %a@," (pp_task c) tt) a.tasks;
  Fmt.pf ppf "  whole-run lower bound: %d cycles@]" a.bound
