(** Circuit liveness: deadlock cycles, starvation and buffer sizing.

    μIR edges are latency-insensitive channels, so a task's dataflow
    can be analysed purely structurally:

    - A cycle of {e blocking} edges (edges carrying no initial tokens
      whose consumption is required before the consumer's first
      firing) can never receive its first token: every node in the
      cycle waits on its predecessor.  That is a guaranteed stall, no
      matter the schedule — reported as an error.

    - A node may also starve without sitting on a cycle: a steer whose
      predicate is a compile-time immediate routes every token to one
      output, so the other side of the diamond never fires.  We
      compute the least fixpoint of "can ever fire" and report the
      frontier of non-firable nodes.

    - Reconvergent fan-out with unbalanced registered depth does not
      deadlock (channels are elastic) but throttles throughput when
      the shorter path cannot buffer the longer path's in-flight
      tokens — the imbalance the μopt [balance] pass exists to fix,
      and the same criterion Dynamatic-style buffer sizers use.
      Reported as a warning.

    The analysis mirrors the simulator's firing rules: a [MergeLoop]
    consumes its control token first and selects init (port 1) on the
    initial [false], so its back edge (port 2) is not required for the
    first firing; every other kind requires all wired inputs. *)

module G = Muir_core.Graph
module T = Muir_ir.Types

let truthy : T.value -> bool = function
  | T.VBool b -> b
  | T.VInt i -> not (Int64.equal i 0L)
  | _ -> true

(** [blocking] edges must receive a freshly produced token before
    their target's first firing: no initial tokens, and the target
    port is required for the first firing (everything except a
    mu/MergeLoop back edge, which is only consumed from the second
    iteration on). *)
let blocking_edge (node_of : int -> G.node) (e : G.edge) : bool =
  e.initial = []
  &&
  match (node_of (fst e.dst)).kind with
  | G.MergeLoop -> snd e.dst <> 2
  | _ -> true

(* ------------------------------------------------------------------ *)
(* Per-task analysis                                                   *)

type ctx = {
  t : G.task;
  node_of : int -> G.node;
  ins_of : int -> G.edge list;  (** in-edges, by target node *)
  outs_of : int -> G.edge list; (** out-edges, by source node *)
}

let make_ctx (t : G.task) : ctx =
  let byid = Hashtbl.create 64 in
  List.iter (fun (n : G.node) -> Hashtbl.replace byid n.nid n) t.nodes;
  let ins = Hashtbl.create 64 and outs = Hashtbl.create 64 in
  List.iter
    (fun (e : G.edge) ->
      Hashtbl.replace ins (fst e.dst)
        (e :: (Option.value ~default:[] (Hashtbl.find_opt ins (fst e.dst))));
      Hashtbl.replace outs (fst e.src)
        (e :: (Option.value ~default:[] (Hashtbl.find_opt outs (fst e.src)))))
    t.edges;
  {
    t;
    node_of = Hashtbl.find byid;
    ins_of = (fun nid -> Option.value ~default:[] (Hashtbl.find_opt ins nid));
    outs_of = (fun nid -> Option.value ~default:[] (Hashtbl.find_opt outs nid));
  }

(** Strongly connected components of the blocking-edge subgraph
    (Tarjan).  Components with a cycle — more than one node, or a
    blocking self-loop — can never fire. *)
let deadlock_cycles (c : ctx) : int list list =
  let index = Hashtbl.create 64 and low = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] and counter = ref 0 and sccs = ref [] in
  let succs nid =
    List.filter_map
      (fun (e : G.edge) ->
        if blocking_edge c.node_of e then Some (fst e.dst) else None)
      (c.outs_of nid)
  in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if w = v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter
    (fun (n : G.node) -> if not (Hashtbl.mem index n.nid) then
        strongconnect n.nid)
    c.t.nodes;
  List.filter
    (fun scc ->
      match scc with
      | [ v ] -> List.exists (fun w -> w = v) (succs v) (* self-loop *)
      | _ :: _ :: _ -> true
      | [] -> false)
    !sccs

(** Least fixpoint of "this node can fire at least once".  A wired
    input port is satisfiable when some in-edge either carries initial
    tokens or comes from a firable node on a live output port.  Steers
    with an immediate predicate only make the taken side live. *)
let can_fire_set (c : ctx) : (int, unit) Hashtbl.t =
  let fire = Hashtbl.create 64 in
  let live_out (n : G.node) (port : int) : bool =
    match n.kind with
    | G.Steer | G.FusedSteer _ -> (
      match n.ins.(0) with
      | G.Simm v -> port = if truthy v then 0 else 1
      | G.Swire -> true)
    | _ -> true
  in
  let required_ports (n : G.node) : int list =
    let skip_back = match n.kind with G.MergeLoop -> 2 | _ -> -1 in
    Array.to_list n.ins
    |> List.mapi (fun i s -> (i, s))
    |> List.filter_map (fun (i, s) ->
           match s with
           | G.Simm _ -> None
           | G.Swire -> if i = skip_back then None else Some i)
  in
  let port_ok (n : G.node) (p : int) : bool =
    List.exists
      (fun (e : G.edge) ->
        snd e.dst = p
        && (e.initial <> []
           ||
           (Hashtbl.mem fire (fst e.src)
           && live_out (c.node_of (fst e.src)) (snd e.src))))
      (c.ins_of n.nid)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (n : G.node) ->
        if not (Hashtbl.mem fire n.nid)
           && List.for_all (port_ok n) (required_ports n)
        then begin
          Hashtbl.replace fire n.nid ();
          changed := true
        end)
      c.t.nodes
  done;
  fire

(** Forward closure from nodes that emit without waiting on wired
    inputs (live-ins, immediate-only nodes) and from targets of primed
    edges — everything else can never see a token. *)
let reachable_set (c : ctx) : (int, unit) Hashtbl.t =
  let seen = Hashtbl.create 64 in
  let rec visit nid =
    if not (Hashtbl.mem seen nid) then begin
      Hashtbl.replace seen nid ();
      List.iter (fun (e : G.edge) -> visit (fst e.dst)) (c.outs_of nid)
    end
  in
  List.iter
    (fun (n : G.node) ->
      let has_wired = Array.exists (fun s -> s = G.Swire) n.ins in
      if not has_wired then visit n.nid)
    c.t.nodes;
  List.iter
    (fun (e : G.edge) -> if e.initial <> [] then visit (fst e.dst))
    c.t.edges;
  seen

(** Backward closure from live-out capture nodes: the nodes whose
    silence loses an observable result. *)
let feeds_liveout_set (c : ctx) : (int, unit) Hashtbl.t =
  let seen = Hashtbl.create 64 in
  let rec visit nid =
    if not (Hashtbl.mem seen nid) then begin
      Hashtbl.replace seen nid ();
      List.iter (fun (e : G.edge) -> visit (fst e.src)) (c.ins_of nid)
    end
  in
  List.iter
    (fun (n : G.node) ->
      match n.kind with G.LiveOut _ -> visit n.nid | _ -> ())
    c.t.nodes;
  seen

(* ------------------------------------------------------------------ *)
(* Buffer sizing                                                       *)

type path = {
  dmin : int;   (** registered depth of the shallowest path *)
  dmax : int;   (** registered depth of the deepest path *)
  slack : int;  (** token capacity along a shallowest path *)
}

let merge_path (a : path) (b : path) : path =
  let dmin, slack =
    if a.dmin < b.dmin then (a.dmin, a.slack)
    else if b.dmin < a.dmin then (b.dmin, b.slack)
    else (a.dmin, max a.slack b.slack)
  in
  { dmin; dmax = max a.dmax b.dmax; slack }

(** Ancestor map of a node: for every transitive source reachable
    backwards over blocking edges, the registered-depth interval of
    the paths and the buffering available along a shallowest path.
    Primed and mu-back edges are skipped, which cuts every legal loop;
    residual zero-token cycles (already reported as deadlocks) are cut
    by the on-stack guard. *)
let ancestor_maps (c : ctx) : int -> (int, path) Hashtbl.t =
  let memo : (int, (int, path) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 16 in
  let rec anc nid : (int, path) Hashtbl.t =
    match Hashtbl.find_opt memo nid with
    | Some m -> m
    | None ->
      if Hashtbl.mem on_stack nid then Hashtbl.create 1
      else begin
        Hashtbl.replace on_stack nid ();
        let m = Hashtbl.create 8 in
        Hashtbl.replace m nid { dmin = 0; dmax = 0; slack = 0 };
        List.iter
          (fun (e : G.edge) ->
            if blocking_edge c.node_of e then begin
              let w = match e.ekind with G.Registered -> 1 | G.Comb -> 0 in
              Hashtbl.iter
                (fun a (p : path) ->
                  let p' =
                    { dmin = p.dmin + w; dmax = p.dmax + w;
                      slack = p.slack + e.capacity }
                  in
                  match Hashtbl.find_opt m a with
                  | None -> Hashtbl.replace m a p'
                  | Some q -> Hashtbl.replace m a (merge_path q p'))
                (anc (fst e.src))
            end)
          (c.ins_of nid);
        Hashtbl.remove on_stack nid;
        Hashtbl.replace memo nid m;
        m
      end
  in
  anc

(** One warning (the worst imbalance) per reconvergence point. *)
let buffer_warnings (c : ctx) : Diag.t list =
  let anc = ancestor_maps c in
  let port_map (nid : int) (p : int) : (int, path) Hashtbl.t =
    let m = Hashtbl.create 8 in
    List.iter
      (fun (e : G.edge) ->
        if snd e.dst = p && blocking_edge c.node_of e then begin
          let w = match e.ekind with G.Registered -> 1 | G.Comb -> 0 in
          Hashtbl.iter
            (fun a (q : path) ->
              let q' =
                { dmin = q.dmin + w; dmax = q.dmax + w;
                  slack = q.slack + e.capacity }
              in
              match Hashtbl.find_opt m a with
              | None -> Hashtbl.replace m a q'
              | Some r -> Hashtbl.replace m a (merge_path r q'))
            (anc (fst e.src))
        end)
      (c.ins_of nid);
    m
  in
  List.filter_map
    (fun (n : G.node) ->
      let wired =
        Array.to_list n.ins
        |> List.mapi (fun i s -> (i, s))
        |> List.filter_map (fun (i, s) ->
               if s = G.Swire then Some i else None)
      in
      let skip = match n.kind with G.MergeLoop -> true | _ -> false in
      if skip || List.length wired < 2 then None
      else begin
        let maps = List.map (fun p -> (p, port_map n.nid p)) wired in
        let worst = ref None in
        List.iter
          (fun (pi, mi) ->
            List.iter
              (fun (pj, mj) ->
                if pi <> pj then
                  Hashtbl.iter
                    (fun a (deep : path) ->
                      match Hashtbl.find_opt mj a with
                      | None -> ()
                      | Some shallow ->
                        let excess = deep.dmax - shallow.dmin in
                        if excess > shallow.slack then begin
                          match !worst with
                          | Some (e, _, _, _, _, _) when e >= excess -> ()
                          | _ ->
                            worst :=
                              Some (excess, a, pi, pj, deep, shallow)
                        end)
                    mi)
              maps)
          maps;
        match !worst with
        | None -> None
        | Some (excess, a, pi, pj, deep, shallow) ->
          Some
            (Diag.warning ~node:n.nid ~code:"buffer" ~where:c.t.tname
               "join n%d (%s): paths from n%d reconverge with depth %d on \
                port %d but only %d slot(s) of buffering on the depth-%d \
                path into port %d; the short path can stall %d token(s) \
                behind the long one"
               n.nid
               (G.kind_to_string n.kind)
               a deep.dmax pi shallow.slack shallow.dmin pj excess)
      end)
    c.t.nodes

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let check_task (t : G.task) : Diag.t list =
  let c = make_ctx t in
  let cycles = deadlock_cycles c in
  let in_cycle = Hashtbl.create 16 in
  List.iter
    (fun scc -> List.iter (fun v -> Hashtbl.replace in_cycle v ()) scc)
    cycles;
  let cycle_diags =
    List.map
      (fun scc ->
        let scc = List.sort compare scc in
        Diag.error ?node:(List.nth_opt scc 0) ~code:"deadlock"
          ~where:t.tname
          "zero-token cycle through %s: every edge needs a token its \
           consumer can only produce after firing — the ring can never \
           start"
          (String.concat " -> "
             (List.map (fun v -> Fmt.str "n%d" v) scc)))
      cycles
  in
  let fire = can_fire_set c in
  let reach = reachable_set c in
  let to_liveout = feeds_liveout_set c in
  let unreachable_diags =
    List.filter_map
      (fun (n : G.node) ->
        if Hashtbl.mem reach n.nid || Hashtbl.mem in_cycle n.nid then None
        else
          Some
            (Diag.warning ~node:n.nid ~code:"unreachable" ~where:t.tname
               "n%d (%s) can never receive a token: no path from a \
                live-in, immediate or primed edge reaches it"
               n.nid
               (G.kind_to_string n.kind)))
      t.nodes
  in
  (* Starvation frontier: non-firable nodes all of whose blocking
     suppliers fire — the root causes, not the flood downstream. *)
  let starved_diags =
    List.filter_map
      (fun (n : G.node) ->
        let is_frontier =
          (not (Hashtbl.mem fire n.nid))
          && (not (Hashtbl.mem in_cycle n.nid))
          && Hashtbl.mem reach n.nid
          && List.for_all
               (fun (e : G.edge) ->
                 (not (blocking_edge c.node_of e))
                 || Hashtbl.mem fire (fst e.src))
               (c.ins_of n.nid)
        in
        if not is_frontier then None
        else if Hashtbl.mem to_liveout n.nid then
          Some
            (Diag.error ~node:n.nid ~code:"starved" ~where:t.tname
               "n%d (%s) can never fire — an upstream steer's immediate \
                predicate routes every token away — and a live-out \
                depends on it"
               n.nid
               (G.kind_to_string n.kind))
        else
          Some
            (Diag.warning ~node:n.nid ~code:"starved" ~where:t.tname
               "n%d (%s) can never fire: every token is routed away \
                upstream" n.nid
               (G.kind_to_string n.kind)))
      t.nodes
  in
  cycle_diags @ starved_diags @ unreachable_diags @ buffer_warnings c

let check (c : G.circuit) : Diag.t list =
  Diag.dedup (List.concat_map check_task c.tasks)
