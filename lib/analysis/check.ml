(** Entry points combining the analyses over a circuit.

    [circuit] runs everything relevant to a lowered design: the
    liveness/deadlock/buffer checks on the graph itself plus the race
    analysis on the program the circuit implements (the graph carries
    its source program, so parallel-task structure is recovered from
    there).  [program] runs just the IR-level checks. *)

module G = Muir_core.Graph

(* Every entry point funnels through here: deduplicated, then under
   Diag's total order, so output is byte-stable for golden tests. *)
let finalize ds = Diag.sort (Diag.dedup ds)

let program (p : Muir_ir.Program.t) : Diag.t list =
  finalize (Races.check p)

let circuit (c : G.circuit) : Diag.t list =
  finalize (Liveness.check c @ Races.check c.prog)

(** Graph-only checks, cheap enough to run after every μopt pass. *)
let circuit_liveness (c : G.circuit) : Diag.t list =
  finalize (Liveness.check c)

let pp_report ppf (ds : Diag.t list) =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut Diag.pp) ds

(** Raise [Invalid_argument] when any diagnostic is an error. *)
let exn_on_errors ~(stage : string) (ds : Diag.t list) : unit =
  match Diag.errors ds with
  | [] -> ()
  | errs ->
    invalid_arg
      (Fmt.str "%s: static analysis found %d error(s):@,%a" stage
         (List.length errs) pp_report errs)
