(** Shared diagnostic type for the static analyses.

    Every analysis (circuit liveness, buffer sizing, parallel races,
    …) reports through this one record so drivers can sort, filter
    and pretty-print uniformly.  [Error] means the input is broken —
    the circuit will stall or the program has a provable race;
    [Warning] means the analysis could not prove the property but the
    input may still be fine. *)

type severity = Error | Warning

type t = {
  sev : severity;
  code : string;
      (** stable machine-readable tag: ["deadlock"], ["starved"],
          ["unreachable"], ["buffer"], ["race"], ["spawn-sync"],
          ["timing"] *)
  where : string;  (** task or function the diagnostic refers to *)
  node : int option;  (** graph node the diagnostic anchors to *)
  msg : string;
}

let error ?node ~code ~where fmt =
  Fmt.kstr (fun msg -> { sev = Error; code; where; node; msg }) fmt

let warning ?node ~code ~where fmt =
  Fmt.kstr (fun msg -> { sev = Warning; code; where; node; msg }) fmt

let severity_to_string = function Error -> "error" | Warning -> "warning"

let pp ppf (d : t) =
  let pp_node ppf = function
    | None -> ()
    | Some n -> Fmt.pf ppf ":n%d" n
  in
  Fmt.pf ppf "%s: %s%a: [%s] %s"
    (severity_to_string d.sev) d.where pp_node d.node d.code d.msg

let is_error (d : t) = d.sev = Error
let errors (ds : t list) = List.filter is_error ds
let has_errors (ds : t list) = List.exists is_error ds

(** Total deterministic order — (severity, task, node, code, text) —
    so driver output and golden files are byte-stable regardless of
    analysis traversal order. *)
let sort (ds : t list) : t list =
  let rank d = match d.sev with Error -> 0 | Warning -> 1 in
  let key d = (rank d, d.where, d.node, d.code, d.msg) in
  List.stable_sort (fun a b -> compare (key a) (key b)) ds

(** Drop diagnostics that render identically (analyses over many
    sibling pairs can derive the same fact repeatedly). *)
let dedup (ds : t list) : t list =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun d ->
      let k = (d.sev, d.code, d.where, d.node, d.msg) in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    ds
