(** Maximum cycle ratio over timed token-flow graphs.

    A task's steady-state throughput is governed by its cycles: a
    directed cycle [C] carrying [M(C)] resting tokens and accumulating
    [W(C)] cycles of latency sustains at most one wave per
    [W(C)/M(C)] cycles — each token must traverse the whole ring
    between consecutive firings of any node on it.  The {e maximum
    cycle ratio} [max_C W(C)/M(C)] is therefore a lower bound on the
    initiation interval, and the cycle attaining it is the critical
    (binding) cycle — the structure Dynamatic-style buffer sizers
    grow.

    The computation must be {e exactly} sound: the timing oracle's
    contract is [bound <= measured] on every workload, so a float
    epsilon is not acceptable.  We use Dinkelbach/Lawler iteration
    over exact integer arithmetic: starting from any concrete cycle's
    ratio [p/q], search for a cycle with [q*W - p*M > 0] (a positive
    cycle under integer edge costs — Bellman-Ford longest-path with
    predecessor extraction), adopt its exact ratio, and repeat.  The
    ratio strictly increases through the finitely many simple-cycle
    ratios, so the loop terminates; and whatever cycle we end on is a
    {e real} cycle of the graph, so its exact rational ratio is a
    sound bound even if an adversarial graph ended the search early.

    Zero-token cycles ([M(C) = 0]) have infinite ratio — the ring can
    never start.  They are detected first and reported as
    {!Unbounded}; the liveness analysis flags the same structure as a
    deadlock error. *)

(** One edge of the abstracted graph.  ['a] is caller-owned
    provenance (which μIR edge/node/resource produced this
    constraint), threaded through untouched so the critical cycle can
    be reported in source terms. *)
type 'a edge = {
  esrc : int;  (** node index, [0 .. n-1] *)
  edst : int;
  ew : int;    (** latency weight, [>= 0] *)
  em : int;    (** resting tokens (marking), [>= 0] *)
  etag : 'a;
}

type 'a result =
  | Acyclic  (** no directed cycle: throughput unconstrained by rings *)
  | Unbounded of 'a edge list
      (** a zero-token cycle, in traversal order: deadlock *)
  | Ratio of { num : int; den : int; cyc : 'a edge list }
      (** max cycle ratio [num/den] in lowest terms, attained by the
          simple cycle [cyc] (edges in traversal order) *)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(** [a/b < c/d] over non-negative rationals with positive
    denominators, exactly. *)
let ratio_lt (a, b) (c, d) = a * d < c * b

(* ------------------------------------------------------------------ *)
(* Cycle search primitives                                             *)

(* Iterative DFS for any cycle of the subgraph [keep]; returns the
   cycle's edges in traversal order.  Gray nodes live on an explicit
   stack of (node, remaining out-edges); hitting a gray node closes a
   cycle which we slice off the path stack. *)
let find_cycle (n : int) (edges : 'a edge list) (keep : 'a edge -> bool)
    : 'a edge list option =
  let outs = Array.make n [] in
  List.iter
    (fun e -> if keep e then outs.(e.esrc) <- e :: outs.(e.esrc))
    edges;
  Array.iteri (fun i l -> outs.(i) <- List.rev l) outs;
  let color = Array.make n 0 in (* 0 white, 1 gray, 2 black *)
  let found = ref None in
  let rec visit path v =
    color.(v) <- 1;
    let rec step = function
      | [] -> ()
      | e :: rest ->
        (match color.(e.edst) with
        | 1 ->
          (* back edge: the cycle is [e] plus the path suffix from
             [e.edst] down to [v] *)
          let rec suffix acc = function
            | [] -> acc
            | p :: tl ->
              if p.esrc = e.edst then p :: acc
              else suffix (p :: acc) tl
          in
          found := Some (suffix [ e ] path)
        | 0 -> visit (e :: path) e.edst
        | _ -> ());
        if !found = None then step rest
    in
    step outs.(v);
    if !found = None then color.(v) <- 2
  in
  let v = ref 0 in
  while !found = None && !v < n do
    if color.(!v) = 0 then visit [] !v;
    incr v
  done;
  !found

(* Longest-path Bellman-Ford under cost [q*ew - p*em], all distances
   seeded 0 (virtual source to every node).  If an edge still relaxes
   after [n] passes a positive cycle exists; walk the predecessor
   graph [n] steps back from it to land on the cycle, then collect
   until a node repeats.  Any predecessor-graph cycle at that point is
   positive (the longest-path mirror of the classical negative-cycle
   argument). *)
let positive_cycle (n : int) (edges : 'a edge array) ~(p : int) ~(q : int)
    : 'a edge list option =
  let dist = Array.make n 0 in
  let pred = Array.make n None in
  let cost (e : 'a edge) = (q * e.ew) - (p * e.em) in
  let relax_pass record =
    let changed = ref false in
    Array.iter
      (fun e ->
        let d = dist.(e.esrc) + cost e in
        if d > dist.(e.edst) then begin
          dist.(e.edst) <- d;
          pred.(e.edst) <- Some e;
          changed := true;
          match record with None -> () | Some r -> r := Some e
        end)
      edges;
    !changed
  in
  let pass = ref 0 in
  while !pass < n && relax_pass None do incr pass done;
  if !pass < n then None (* converged: no positive cycle *)
  else begin
    let witness = ref None in
    if not (relax_pass (Some witness)) then None
    else begin
      (* Walk back n steps to guarantee we sit on the cycle itself. *)
      let v = ref (Option.get !witness).edst in
      for _ = 1 to n do
        match pred.(!v) with Some e -> v := e.esrc | None -> ()
      done;
      let start = !v in
      let rec collect acc v =
        match pred.(v) with
        | None -> acc (* unreachable: every walked node has a pred *)
        | Some e ->
          if e.esrc = start then e :: acc else collect (e :: acc) e.esrc
      in
      Some (collect [] start)
    end
  end

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let cycle_sums (cyc : 'a edge list) : int * int =
  List.fold_left (fun (w, m) e -> (w + e.ew, m + e.em)) (0, 0) cyc

(** Maximum cycle ratio of a graph on nodes [0 .. n-1]. *)
let max_cycle_ratio (n : int) (edges : 'a edge list) : 'a result =
  match find_cycle n edges (fun e -> e.em = 0) with
  | Some cyc -> Unbounded cyc
  | None -> (
    match find_cycle n edges (fun _ -> true) with
    | None -> Acyclic
    | Some cyc0 ->
      let arr = Array.of_list edges in
      let rec improve (best : 'a edge list) =
        let w, m = cycle_sums best in
        (* m > 0: zero-token cycles were excluded above *)
        match positive_cycle n arr ~p:w ~q:m with
        | None -> best
        | Some cyc ->
          let w', m' = cycle_sums cyc in
          if m' > 0 && ratio_lt (w, m) (w', m') then improve cyc
          else best (* no strict progress: [best] stays sound *)
      in
      let cyc = improve cyc0 in
      let w, m = cycle_sums cyc in
      let g = max 1 (gcd w m) in
      Ratio { num = w / g; den = m / g; cyc })

(** [ceil (num * mult / den)] — the II bound scaled to a wave count. *)
let scale_ratio ~(num : int) ~(den : int) (mult : int) : int =
  if den = 0 then 0 else ((num * mult) + den - 1) / den
